"""The Bayesian-optimization tuning loop (system S5).

:class:`Tuner` is the non-transfer-learning autotuner — the paper's
``NoTLA`` baseline, equivalent to plain GPTune single-task tuning: an
initial random design followed by GP fit + expected-improvement search
after every function evaluation.

The loop structure is deliberately hookable: the transfer-learning tuner
in :mod:`repro.tla.tuner` overrides a single method (:meth:`_model`) to
swap the target-only GP for a TLA surrogate, so all bookkeeping (budget,
failures, deduplication, callbacks, result assembly) is shared and tested
once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from . import perf
from .acquisition import Acquisition, ExpectedImprovement, PredictFn
from .gp import GaussianProcess, GPFitError
from .feasibility import KnnFeasibility
from .history import History
from .kernels import kernel_from_name
from .optimizer import SearchOptions, search_next
from .problem import Evaluation, TuningProblem
from .samplers import Sampler, get_sampler
from .sparse import make_surrogate, resolve_surrogate_kind

__all__ = ["Tuner", "TunerOptions", "TuningResult"]

EvaluationCallback = Callable[[Evaluation], None]


@dataclass
class TunerOptions:
    """Controls for the BO loop.

    ``n_initial`` random evaluations seed the surrogate (the paper's
    typical setting starts BO after a random phase, Sec. VI-B);
    ``refit_every`` re-runs hyperparameter MLE only every k-th iteration
    (data is always refreshed), amortizing optimization cost on large
    histories.  On the in-between iterations ``incremental`` appends the
    new observations to the GP's cached Cholesky factor in O(n^2) instead
    of refactorizing from scratch (identical predictions, measured by
    ``benchmarks/bench_hotpath.py``).
    """

    n_initial: int = 2
    sampler: str = "random"
    kernel: str = "rbf"
    acquisition: Acquisition = field(default_factory=ExpectedImprovement)
    refit_every: int = 1
    #: use rank-1 Cholesky appends on non-refit iterations
    incremental: bool = True
    gp_max_fun: int = 80
    gp_restarts: int = 1
    #: surrogate policy: ``"auto"`` keeps the exact dense GP (bit-identical
    #: to the historical loop) up to ``n_dense_max`` observations and
    #: switches to the O(nm^2) sparse inducing-point GP past it;
    #: ``"dense"`` / ``"sparse"`` / ``"partitioned"`` force one kind
    surrogate: str = "auto"
    n_dense_max: int = 1000
    #: inducing points for the sparse surrogate (``m`` in the O(nm^2) fit)
    n_inducing: int = 100
    #: max points per local GP for the partitioned surrogate
    leaf_size: int = 200
    #: learn P(feasible) from observed failures and steer the acquisition
    #: away from them (ablation: bench_ablation_failures.py)
    learn_feasibility: bool = True
    search: SearchOptions = field(default_factory=SearchOptions)

    def make_sampler(self) -> Sampler:
        return get_sampler(self.sampler)


@dataclass
class TuningResult:
    """Outcome of one tuning run."""

    problem_name: str
    tuner_name: str
    task: dict[str, Any]
    history: History
    seed: int | None = None
    #: perf-counter/timer snapshot of this run (see :mod:`repro.core.perf`)
    perf: dict[str, Any] | None = None

    @property
    def best_config(self) -> dict[str, Any]:
        return self.history.best().config

    @property
    def best_output(self) -> float:
        return self.history.best_output()

    @property
    def n_evaluations(self) -> int:
        return len(self.history)

    def best_so_far(self) -> list[float]:
        return self.history.best_so_far()

    def summary(self) -> dict[str, Any]:
        out = {
            "problem": self.problem_name,
            "tuner": self.tuner_name,
            "task": dict(self.task),
            "n_evaluations": self.n_evaluations,
            "n_failures": self.history.n_failures,
            "best_output": self.best_output if self.history.n_successes else None,
            "best_config": self.best_config if self.history.n_successes else None,
        }
        if self.perf is not None:
            out["perf"] = self.perf
        return out


class Tuner:
    """Single-task Bayesian-optimization autotuner (``NoTLA``).

    Parameters
    ----------
    problem:
        The tuning problem to minimize.
    options:
        Loop controls; defaults are sensible for the paper's budgets
        (10-20 evaluations).
    callbacks:
        Called with every :class:`Evaluation` (success or failure); the
        crowd layer uses this to stream records to the shared repository
        when ``sync_crowd_repo`` is on.
    """

    name = "NoTLA"

    def __init__(
        self,
        problem: TuningProblem,
        options: TunerOptions | None = None,
        callbacks: list[EvaluationCallback] | None = None,
    ) -> None:
        self.problem = problem
        self.options = options or TunerOptions()
        self.callbacks = list(callbacks or [])

    # -- main loop -------------------------------------------------------
    def tune(
        self,
        task: Mapping[str, Any],
        n_samples: int,
        *,
        seed: int | None = None,
        history: History | None = None,
    ) -> TuningResult:
        """Run ``n_samples`` function evaluations on ``task``.

        An existing ``history`` may be passed to continue a previous run
        (its evaluations count toward the surrogate but not the budget).
        """
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        self.problem.input_space.validate(task)
        rng = np.random.default_rng(seed)
        hist = history if history is not None else History(task, self.problem.parameter_space)

        sampler = self.options.make_sampler()
        feasible = lambda cfg: self.problem.feasible(task, cfg)
        with perf.collect() as stats:
            # inside the collect window so preparation work (e.g. TLA
            # source-surrogate fits and store hits) shows up in .perf
            with perf.timer("prepare"):
                self._prepare(task, rng)
            for _ in range(n_samples):
                with perf.timer("iteration"):
                    if hist.n_successes < self.options.n_initial:
                        config = self._initial_config(sampler, hist, feasible, rng)
                    else:
                        config = self._propose(hist, rng)
                    with perf.timer("evaluate"):
                        evaluation = self.problem.evaluate(task, config)
                hist.append(evaluation)
                for cb in self.callbacks:
                    cb(evaluation)
        return TuningResult(
            problem_name=self.problem.name,
            tuner_name=self.name,
            task=dict(task),
            history=hist,
            seed=seed,
            perf=stats.snapshot(),
        )

    # -- hooks -------------------------------------------------------------
    def _prepare(self, task: Mapping[str, Any], rng: np.random.Generator) -> None:
        """One-time setup before the loop (TLA tuner loads sources here)."""
        self._iteration = 0
        self._gp: GaussianProcess | None = None
        self._surrogate_kind: str | None = None
        self._task = dict(task)

    def _resolve_kind(self, n: int) -> str:
        """The concrete surrogate kind for an ``n``-observation history.

        Pure function of the options and ``n`` — it consumes no random
        draws, so below ``n_dense_max`` the loop's rng stream (and hence
        its proposals) is bit-identical to the pre-policy tuner.  The
        mixed-space kernel stays dense regardless of policy: the sparse
        kinds cover the continuous kernel family only.
        """
        if self.options.kernel == "mixed":
            return "dense"
        return resolve_surrogate_kind(self.options.surrogate, n, self.options.n_dense_max)

    def _feasible(self, config: Mapping[str, Any]) -> bool:
        return self.problem.feasible(self._task, config)

    def _initial_config(self, sampler, hist: History, feasible, rng):
        """A fresh random configuration, preferring feasible ones."""
        for _ in range(50):
            batch = sampler.sample(
                self.problem.parameter_space, 1, rng, exclude=hist.configs()
            )
            config = batch[0] if batch else self.problem.parameter_space.sample(rng)
            if feasible(config):
                return config
        return config

    def _propose(self, hist: History, rng: np.random.Generator) -> dict[str, Any]:
        with perf.timer("surrogate"):
            predict = self._model(hist, rng)
        if predict is None:  # modeling failed: fall back to random search
            return self._initial_config(
                self.options.make_sampler(), hist, self._feasible, rng
            )
        X_obs, _ = hist.arrays()
        X_failed = hist.failed_array()
        p_feasible = self._feasibility_model(X_obs, X_failed)
        with perf.timer("search"):
            return search_next(
                predict,
                self.problem.parameter_space,
                self.options.acquisition,
                rng,
                X_obs=X_obs,
                evaluated=hist.configs(),
                X_failed=X_failed,
                p_feasible=p_feasible,
                feasible=self._feasible,
                options=self.options.search,
            )

    def _feasibility_model(self, X_obs, X_failed):
        """A learned P(feasible) when failures have been observed."""
        if not self.options.learn_feasibility or X_failed.shape[0] == 0:
            return None
        return KnnFeasibility(X_obs, X_failed).predict_proba

    def _model(self, hist: History, rng: np.random.Generator) -> PredictFn | None:
        """Fit (or refresh) the surrogate; returns its predict function.

        On ``refit_every`` boundaries the GP is refit from scratch with
        hyperparameter MLE.  In between, when ``options.incremental`` is
        on and the history has only grown, the new observations are
        appended to the cached factorization in O(n^2) per point (and an
        iteration with no new successes reuses the model outright).
        """
        X, y = hist.arrays()
        if X.shape[0] == 0:
            return None
        opts = self.options
        kind = self._resolve_kind(X.shape[0])
        if self._gp is not None and kind != self._surrogate_kind:
            self._gp = None  # history crossed n_dense_max: rebuild as the new kind
        refit = self._gp is None or (self._iteration % max(opts.refit_every, 1) == 0)
        self._iteration += 1
        if self._gp is None:
            self._surrogate_kind = kind
            if kind == "dense":
                if opts.kernel == "mixed":
                    from .mixed import mixed_kernel_for_space

                    kernel = mixed_kernel_for_space(self.problem.parameter_space)
                else:
                    kernel = kernel_from_name(opts.kernel, X.shape[1])
                self._gp = GaussianProcess(
                    kernel,
                    max_fun=opts.gp_max_fun,
                    n_restarts=opts.gp_restarts,
                    seed=int(rng.integers(0, 2**31 - 1)),
                )
            else:
                self._gp = make_surrogate(
                    kind,
                    opts.kernel,
                    seed=int(rng.integers(0, 2**31 - 1)),
                    max_fun=opts.gp_max_fun,
                    n_restarts=opts.gp_restarts,
                    n_inducing=opts.n_inducing,
                    leaf_size=opts.leaf_size,
                )
        gp = self._gp
        if not refit and opts.incremental and gp.fitted:
            n_new = gp.extends_training_data(X, y)
            if n_new == 0:
                perf.incr("gp_model_reuses")  # e.g. the evaluation failed
                return gp.predict
            if n_new is not None:
                try:
                    gp.update(X[-n_new:], y[-n_new:])
                except GPFitError:
                    return None
                return gp.predict
        gp.optimize = refit
        try:
            gp.fit(X, y)
        except GPFitError:
            return None
        return gp.predict
