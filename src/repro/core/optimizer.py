"""Acquisition search: pick the next configuration to evaluate (system S4).

The search maximizes an acquisition over the unit cube with a candidate
sweep (quasi-random + perturbations of the incumbent) followed by local
refinement of the best continuous candidates.  Candidates that round to an
already-evaluated configuration are excluded so deterministic objectives
never re-measure a known point.

All scoring goes through one vectorized function (acquisition times
learned feasibility times failure damping), applied uniformly to the
candidate pool and to every refined point, and the local polish evaluates
whole probe batches per round instead of one row at a time — the
surrogate's ``predict`` is only ever called on batched inputs.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from . import perf
from .acquisition import Acquisition, PendingPenalty, PredictFn
from .samplers import _config_key
from .space import Space

__all__ = ["LIE_STRATEGIES", "SearchOptions", "propose_batch", "search_next", "reference_best"]

ScoreFn = Callable[[np.ndarray], np.ndarray]


class SearchOptions:
    """Knobs for the candidate search.

    ``n_candidates`` random probes; the ``n_local`` best candidates get a
    batched stochastic polish: ``local_iters`` rounds of ``local_probes``
    Gaussian perturbations each, with the step scale shrinking on rounds
    that fail to improve (cheap, derivative-free, robust for mixed spaces
    where the acquisition is piecewise constant along integer axes).
    """

    def __init__(
        self,
        n_candidates: int = 1024,
        n_local: int = 2,
        local_iters: int = 40,
        local_probes: int = 8,
        incumbent_fraction: float = 0.25,
        incumbent_scale: float = 0.08,
        failure_radius: float = 0.12,
    ) -> None:
        if n_candidates < 1:
            raise ValueError("n_candidates must be positive")
        if local_probes < 1:
            raise ValueError("local_probes must be positive")
        self.n_candidates = n_candidates
        self.n_local = n_local
        self.local_iters = local_iters
        self.local_probes = local_probes
        self.incumbent_fraction = incumbent_fraction
        self.incumbent_scale = incumbent_scale
        self.failure_radius = failure_radius


def reference_best(predict: PredictFn, X_obs: np.ndarray) -> float:
    """Model-based reference value for EI: min predicted mean at observed X.

    Using the model's own view of the best observation (rather than the
    raw noisy minimum) keeps EI consistent across the combined TLA
    surrogates, whose predictions may live in a transformed scale.
    """
    if X_obs.shape[0] == 0:
        return 0.0
    mean, _ = predict(X_obs)
    return float(np.min(mean))


def _make_scorer(
    predict: PredictFn,
    acquisition: Acquisition,
    y_ref: float,
    p_feasible: Callable[[np.ndarray], np.ndarray] | None,
    X_failed: np.ndarray | None,
    failure_radius: float,
) -> ScoreFn:
    """One vectorized scoring function for pool candidates and refinements.

    Combines the acquisition with the learned feasibility probability and
    the tabu damping around failed evaluations: failures carry no value
    for the surrogate (they are excluded from fitting, paper Sec. VI-C),
    so without damping the same failing region gets proposed repeatedly.
    """
    Xf = None
    if X_failed is not None and len(X_failed) > 0:
        Xf = np.atleast_2d(np.asarray(X_failed, dtype=float))
        Xf_sq = np.sum(Xf * Xf, axis=1)[None, :]

    def score(U: np.ndarray) -> np.ndarray:
        s = acquisition(predict, U, y_ref)
        if p_feasible is not None:
            s = s * p_feasible(U)
        if Xf is not None:
            d2 = np.sum(U * U, axis=1)[:, None] + Xf_sq - 2.0 * (U @ Xf.T)
            dist = np.sqrt(np.maximum(d2, 0.0)).min(axis=1)
            s = s * np.clip(dist / failure_radius, 0.0, 1.0)
        return s

    return score


def _refine_local(
    U: np.ndarray,
    scores: np.ndarray,
    top: np.ndarray,
    score: ScoreFn,
    rng: np.random.Generator,
    opts: SearchOptions,
) -> None:
    """Batched stochastic polish of the top candidates, in place.

    Every round perturbs *all* refined points at once and scores the whole
    probe batch in a single call, replacing the former per-point
    Nelder-Mead whose objective issued one-row ``predict`` calls.
    """
    if len(top) == 0 or opts.local_iters < 1:
        return
    dim = U.shape[1]
    best_u = U[top].copy()
    best_s = scores[top].copy()
    scale = np.full((len(top), 1, 1), 0.08)
    rows = np.arange(len(top))
    for _ in range(opts.local_iters):
        probes = best_u[:, None, :] + rng.normal(
            size=(len(top), opts.local_probes, dim)
        ) * scale
        np.clip(probes, 0.0, 1.0, out=probes)
        s = score(probes.reshape(-1, dim)).reshape(len(top), opts.local_probes)
        j = np.argmax(s, axis=1)
        s_round = s[rows, j]
        improved = s_round > best_s
        best_u[improved] = probes[rows, j][improved]
        best_s[improved] = s_round[improved]
        scale[~improved] *= 0.8  # anneal where the round stalled
    U[top] = best_u
    scores[top] = best_s


def search_next(
    predict: PredictFn,
    space: Space,
    acquisition: Acquisition,
    rng: np.random.Generator,
    *,
    X_obs: np.ndarray | None = None,
    evaluated: list[dict[str, Any]] | None = None,
    X_failed: np.ndarray | None = None,
    p_feasible: Callable[[np.ndarray], np.ndarray] | None = None,
    feasible: Callable[[dict[str, Any]], bool] | None = None,
    options: SearchOptions | None = None,
) -> dict[str, Any]:
    """Return the configuration maximizing the acquisition.

    Parameters
    ----------
    predict:
        ``predict(X) -> (mean, std)`` over unit-cube rows.
    space:
        Tuning space; the returned dict is a valid configuration in it.
    X_obs:
        Unit-cube array of successful observations (for the EI reference).
    evaluated:
        All previously attempted configurations (successes *and*
        failures); the search avoids re-proposing them.
    X_failed:
        Unit-cube points whose evaluation failed (OOM etc.); acquisition
        scores are damped within ``options.failure_radius`` of them.
    p_feasible:
        Optional learned probability-of-feasibility (see
        :class:`repro.core.feasibility.KnnFeasibility`); acquisition
        scores are multiplied by it.
    feasible:
        Optional cheap feasibility predicate (the tuning problem's known
        constraint, e.g. PDGEQRF's ``p <= total ranks``); infeasible
        candidates are skipped before spending an evaluation on them.
        When the space is exhausted, an already-evaluated *feasible*
        configuration is preferred over any infeasible one.
    """
    opts = options or SearchOptions()
    X_obs = np.empty((0, space.dim)) if X_obs is None else np.atleast_2d(X_obs)
    seen = {_config_key(c) for c in (evaluated or [])}

    # --- candidate pool: uniform + Gaussian perturbations of the incumbent
    n_inc = int(opts.n_candidates * opts.incumbent_fraction) if X_obs.shape[0] else 0
    n_uni = opts.n_candidates - n_inc
    cands = [rng.random((n_uni, space.dim))]
    if n_inc:
        mean_obs, _ = predict(X_obs)
        incumbent = X_obs[int(np.argmin(mean_obs))]
        local = incumbent + rng.normal(0.0, opts.incumbent_scale, (n_inc, space.dim))
        cands.append(np.clip(local, 0.0, 1.0))
    U = np.vstack(cands)

    if X_obs.shape[0] > 0:
        y_ref = reference_best(predict, X_obs)
    else:
        # no successful observation yet: anchor EI at an optimistic
        # quantile of the model's own candidate predictions.  (A zero
        # reference would degenerate EI into pure variance maximization,
        # which repeatedly probes unexplored failure corners.)
        mean_cands, _ = predict(U)
        y_ref = float(np.quantile(mean_cands, 0.05))

    score = _make_scorer(
        predict, acquisition, y_ref, p_feasible, X_failed, opts.failure_radius
    )
    scores = score(U)

    # --- local refinement of the top continuous candidates
    order = np.argsort(scores)[::-1]
    _refine_local(U, scores, order[: opts.n_local], score, rng, opts)

    # --- pick best not-yet-evaluated, feasible configuration
    order = np.argsort(scores)[::-1]
    for idx in order:
        config = space.from_unit(U[idx])
        if _config_key(config) in seen:
            continue
        if feasible is not None and not feasible(config):
            continue
        return config
    # all candidates collide with evaluated configs or are infeasible
    # (tiny discrete spaces): fall back to uniform resampling
    for _ in range(200):
        config = space.sample(rng)
        if _config_key(config) in seen:
            continue
        if feasible is not None and not feasible(config):
            continue
        return config
    # exhausted: accept a duplicate as last resort, but prefer the best
    # *feasible* candidate — re-proposing an evaluated configuration is
    # wasteful, returning an infeasible one breaks the contract above
    if feasible is not None:
        for idx in order:
            config = space.from_unit(U[idx])
            if feasible(config):
                return config
        for _ in range(200):
            config = space.sample(rng)
            if feasible(config):
                return config
    return space.from_unit(U[order[0]])


#: recognized fantasy-lie strategies for batch proposal
LIE_STRATEGIES = ("cl-min", "cl-mean", "cl-max", "kb")


def _lie_value(lie: str, predict: PredictFn, u: np.ndarray, y_obs: np.ndarray) -> float:
    """The fantasy observation assigned to a not-yet-evaluated point.

    Constant liar (``cl-*``) pretends the pending run returns the
    min/mean/max of the real observations; kriging believer (``kb``)
    pretends it returns the model's own posterior mean.
    """
    if lie == "cl-min":
        return float(np.min(y_obs))
    if lie == "cl-mean":
        return float(np.mean(y_obs))
    if lie == "cl-max":
        return float(np.max(y_obs))
    if lie == "kb":
        mean, _ = predict(np.atleast_2d(u))
        return float(np.asarray(mean).ravel()[0])
    raise ValueError(f"unknown lie strategy {lie!r}; choose from {LIE_STRATEGIES}")


def propose_batch(
    predict: PredictFn,
    space: Space,
    acquisition: Acquisition,
    rng: np.random.Generator,
    *,
    q: int,
    gp=None,
    X_obs: np.ndarray | None = None,
    y_obs: np.ndarray | None = None,
    X_pending: np.ndarray | None = None,
    evaluated: list[dict[str, Any]] | None = None,
    X_failed: np.ndarray | None = None,
    p_feasible: Callable[[np.ndarray], np.ndarray] | None = None,
    feasible: Callable[[dict[str, Any]], bool] | None = None,
    lie: str = "cl-min",
    options: SearchOptions | None = None,
) -> list[dict[str, Any]]:
    """Propose ``q`` diverse configurations for parallel evaluation.

    Sequential fantasizing: each pick is the :func:`search_next` argmax
    under a surrogate conditioned on *fantasy observations* at every
    point already in flight — the ``X_pending`` rows plus the picks made
    earlier in this call.  When ``gp`` is a fitted
    :class:`~repro.core.gp.GaussianProcess` the fantasies are exact
    conditioning via its O(n^2) rank-1 :meth:`update` (restored before
    returning, so the caller's model is untouched).  For surrogates
    without an update path (combined TLA predictors) the fallback damps
    the acquisition around in-flight points instead
    (:class:`~repro.core.acquisition.PendingPenalty`).

    ``lie`` selects the fantasy value: ``cl-min`` / ``cl-mean`` /
    ``cl-max`` (constant liar on the observed minimum/mean/maximum) or
    ``kb`` (kriging believer, the posterior mean).
    """
    if q < 1:
        raise ValueError("q must be >= 1")
    evaluated = list(evaluated or [])
    X_pending = (
        np.empty((0, space.dim))
        if X_pending is None
        else np.atleast_2d(np.asarray(X_pending, dtype=float))
    )
    use_gp = (
        gp is not None
        and getattr(gp, "fitted", False)
        # fantasization snapshots/restores gp._state around speculative
        # updates; surrogates without that single-state shape (the
        # partitioned ensemble) take the pending-penalty fallback instead
        and getattr(gp, "_state", None) is not None
        and y_obs is not None
        and np.asarray(y_obs).size > 0
    )
    proposals: list[dict[str, Any]] = []
    if not use_gp:
        # model-agnostic fallback: penalize in-flight neighborhoods
        pend = X_pending
        for _ in range(q):
            acq = PendingPenalty(acquisition, pend if pend.shape[0] else None)
            config = search_next(
                predict,
                space,
                acq,
                rng,
                X_obs=X_obs,
                evaluated=evaluated + proposals,
                X_failed=X_failed,
                p_feasible=p_feasible,
                feasible=feasible,
                options=options,
            )
            proposals.append(config)
            pend = np.vstack([pend, space.to_unit_array([config])])
        return proposals

    y_obs = np.asarray(y_obs, dtype=float).ravel()
    saved_state = gp._state
    n_fantasies = 0
    try:
        if X_pending.shape[0]:
            lies = [_lie_value(lie, gp.predict, u, y_obs) for u in X_pending]
            try:
                gp.update(X_pending, np.asarray(lies))
                n_fantasies += X_pending.shape[0]
            except Exception:  # degenerate fantasy: fall back to penalties
                gp._state = saved_state
                return propose_batch(
                    predict, space, acquisition, rng, q=q, X_obs=X_obs,
                    y_obs=y_obs, X_pending=X_pending, evaluated=evaluated,
                    X_failed=X_failed, p_feasible=p_feasible,
                    feasible=feasible, lie=lie, options=options,
                )
        X_aug = np.vstack([X_obs, X_pending]) if X_obs is not None else X_pending
        for i in range(q):
            config = search_next(
                gp.predict,
                space,
                acquisition,
                rng,
                X_obs=X_aug if X_aug.shape[0] else None,
                evaluated=evaluated + proposals,
                X_failed=X_failed,
                p_feasible=p_feasible,
                feasible=feasible,
                options=options,
            )
            proposals.append(config)
            if i + 1 == q:
                break  # no fantasy needed after the last pick
            u = space.to_unit_array([config])
            try:
                gp.update(u, np.array([_lie_value(lie, gp.predict, u[0], y_obs)]))
                n_fantasies += 1
            except Exception:
                break  # keep the picks made so far; stop fantasizing
            X_aug = np.vstack([X_aug, u])
        if len(proposals) < q:
            # finish the batch with penalty-based picks
            pend = np.vstack([X_pending, space.to_unit_array(proposals)]) if (
                X_pending.shape[0] or proposals
            ) else None
            for _ in range(q - len(proposals)):
                acq = PendingPenalty(acquisition, pend)
                config = search_next(
                    predict, space, acq, rng, X_obs=X_obs,
                    evaluated=evaluated + proposals, X_failed=X_failed,
                    p_feasible=p_feasible, feasible=feasible, options=options,
                )
                proposals.append(config)
                u = space.to_unit_array([config])
                pend = u if pend is None else np.vstack([pend, u])
    finally:
        # the fantasies must never leak into the caller's model
        gp._state = saved_state
        cache = getattr(gp, "_factor_cache", None)  # dense-GP only
        if cache is not None:
            cache.clear()
        if hasattr(gp, "_mle_best"):
            gp._mle_best = None
    if n_fantasies:
        perf.incr("fantasy_updates", n_fantasies)
    return proposals
