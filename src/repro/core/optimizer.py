"""Acquisition search: pick the next configuration to evaluate (system S4).

The search maximizes an acquisition over the unit cube with a candidate
sweep (quasi-random + perturbations of the incumbent) followed by local
refinement of the best continuous candidate.  Candidates that round to an
already-evaluated configuration are excluded so deterministic objectives
never re-measure a known point.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np
from scipy import optimize as sopt

from .acquisition import Acquisition, PredictFn
from .samplers import _config_key
from .space import Space

__all__ = ["SearchOptions", "search_next", "reference_best"]


class SearchOptions:
    """Knobs for the candidate search.

    ``n_candidates`` random probes, ``n_local`` of the best candidates get
    Nelder-Mead polish (cheap, derivative-free, robust for mixed spaces
    where the acquisition is piecewise constant along integer axes).
    """

    def __init__(
        self,
        n_candidates: int = 1024,
        n_local: int = 2,
        local_iters: int = 40,
        incumbent_fraction: float = 0.25,
        incumbent_scale: float = 0.08,
        failure_radius: float = 0.12,
    ) -> None:
        if n_candidates < 1:
            raise ValueError("n_candidates must be positive")
        self.n_candidates = n_candidates
        self.n_local = n_local
        self.local_iters = local_iters
        self.incumbent_fraction = incumbent_fraction
        self.incumbent_scale = incumbent_scale
        self.failure_radius = failure_radius


def reference_best(predict: PredictFn, X_obs: np.ndarray) -> float:
    """Model-based reference value for EI: min predicted mean at observed X.

    Using the model's own view of the best observation (rather than the
    raw noisy minimum) keeps EI consistent across the combined TLA
    surrogates, whose predictions may live in a transformed scale.
    """
    if X_obs.shape[0] == 0:
        return 0.0
    mean, _ = predict(X_obs)
    return float(np.min(mean))


def search_next(
    predict: PredictFn,
    space: Space,
    acquisition: Acquisition,
    rng: np.random.Generator,
    *,
    X_obs: np.ndarray | None = None,
    evaluated: list[dict[str, Any]] | None = None,
    X_failed: np.ndarray | None = None,
    p_feasible: Callable[[np.ndarray], np.ndarray] | None = None,
    feasible: Callable[[dict[str, Any]], bool] | None = None,
    options: SearchOptions | None = None,
) -> dict[str, Any]:
    """Return the configuration maximizing the acquisition.

    Parameters
    ----------
    predict:
        ``predict(X) -> (mean, std)`` over unit-cube rows.
    space:
        Tuning space; the returned dict is a valid configuration in it.
    X_obs:
        Unit-cube array of successful observations (for the EI reference).
    evaluated:
        All previously attempted configurations (successes *and*
        failures); the search avoids re-proposing them.
    X_failed:
        Unit-cube points whose evaluation failed (OOM etc.); acquisition
        scores are damped within ``options.failure_radius`` of them.
    p_feasible:
        Optional learned probability-of-feasibility (see
        :class:`repro.core.feasibility.KnnFeasibility`); acquisition
        scores are multiplied by it.
    feasible:
        Optional cheap feasibility predicate (the tuning problem's known
        constraint, e.g. PDGEQRF's ``p <= total ranks``); infeasible
        candidates are skipped before spending an evaluation on them.
    """
    opts = options or SearchOptions()
    X_obs = np.empty((0, space.dim)) if X_obs is None else np.atleast_2d(X_obs)
    seen = {_config_key(c) for c in (evaluated or [])}

    # --- candidate pool: uniform + Gaussian perturbations of the incumbent
    n_inc = int(opts.n_candidates * opts.incumbent_fraction) if X_obs.shape[0] else 0
    n_uni = opts.n_candidates - n_inc
    cands = [rng.random((n_uni, space.dim))]
    if n_inc:
        mean_obs, _ = predict(X_obs)
        incumbent = X_obs[int(np.argmin(mean_obs))]
        local = incumbent + rng.normal(0.0, opts.incumbent_scale, (n_inc, space.dim))
        cands.append(np.clip(local, 0.0, 1.0))
    U = np.vstack(cands)

    if X_obs.shape[0] > 0:
        y_ref = reference_best(predict, X_obs)
    else:
        # no successful observation yet: anchor EI at an optimistic
        # quantile of the model's own candidate predictions.  (A zero
        # reference would degenerate EI into pure variance maximization,
        # which repeatedly probes unexplored failure corners.)
        mean_cands, _ = predict(U)
        y_ref = float(np.quantile(mean_cands, 0.05))

    scores = acquisition(predict, U, y_ref)
    if p_feasible is not None:
        scores = scores * p_feasible(U)

    # --- tabu damping around failed evaluations: failures carry no value
    # for the surrogate (they are excluded from fitting, paper Sec. VI-C)
    # so without this the same failing region gets proposed repeatedly
    if X_failed is not None and len(X_failed) > 0:
        Xf = np.atleast_2d(np.asarray(X_failed, dtype=float))
        d2 = (
            np.sum(U * U, axis=1)[:, None]
            + np.sum(Xf * Xf, axis=1)[None, :]
            - 2.0 * (U @ Xf.T)
        )
        dist = np.sqrt(np.maximum(d2, 0.0)).min(axis=1)
        radius = opts.failure_radius
        scores = scores * np.clip(dist / radius, 0.0, 1.0)

    def _damp(u_row: np.ndarray, score: float) -> float:
        if p_feasible is not None:
            score = score * float(p_feasible(u_row[None, :])[0])
        if X_failed is None or len(X_failed) == 0:
            return score
        Xf = np.atleast_2d(np.asarray(X_failed, dtype=float))
        d = np.sqrt(np.sum((Xf - u_row[None, :]) ** 2, axis=1)).min()
        return score * float(np.clip(d / opts.failure_radius, 0.0, 1.0))

    # --- local refinement of the top continuous candidates
    order = np.argsort(scores)[::-1]
    for idx in order[: opts.n_local]:
        res = sopt.minimize(
            lambda u: -float(
                acquisition(predict, np.clip(u, 0, 1)[None, :], y_ref)[0]
            ),
            U[idx],
            method="Nelder-Mead",
            options={"maxiter": opts.local_iters, "xatol": 1e-3, "fatol": 1e-9},
        )
        u_loc = np.clip(res.x, 0.0, 1.0)
        s_loc = _damp(
            u_loc, float(acquisition(predict, u_loc[None, :], y_ref)[0])
        )
        if s_loc > scores[idx]:
            U[idx] = u_loc
            scores[idx] = s_loc

    # --- pick best not-yet-evaluated, feasible configuration
    order = np.argsort(scores)[::-1]
    for idx in order:
        config = space.from_unit(U[idx])
        if _config_key(config) in seen:
            continue
        if feasible is not None and not feasible(config):
            continue
        return config
    # all candidates collide with evaluated configs or are infeasible
    # (tiny discrete spaces): fall back to uniform resampling, then accept
    # a duplicate as last resort
    for _ in range(200):
        config = space.sample(rng)
        if _config_key(config) in seen:
            continue
        if feasible is not None and not feasible(config):
            continue
        return config
    return space.from_unit(U[order[0]])
