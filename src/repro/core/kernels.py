"""Covariance kernels for Gaussian-process surrogates (system S2).

Kernels expose their hyperparameters as a flat vector ``theta`` in log
space, which is what the marginal-likelihood optimizer in
:mod:`repro.core.gp` manipulates.  The RBF kernel provides analytic
gradients (the common fast path); the Matern kernels fall back to finite
differences inside the optimizer.

All kernels operate on points in the unit hypercube produced by
:class:`repro.core.space.Space`, so lengthscale bounds are expressed
relative to a [0, 1] domain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Kernel", "RBF", "Matern52", "Matern32", "kernel_from_name"]


def sq_dists(X: np.ndarray, Y: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Pairwise squared distances after per-dimension scaling.

    Computed via the expanded form ``|a|^2 + |b|^2 - 2 a.b`` which is the
    vectorized idiom (no Python loops); clipped at zero to absorb
    round-off.
    """
    A = X / lengthscales
    B = Y / lengthscales
    d2 = (
        np.sum(A * A, axis=1)[:, None]
        + np.sum(B * B, axis=1)[None, :]
        - 2.0 * (A @ B.T)
    )
    return np.maximum(d2, 0.0)


class Kernel(ABC):
    """Base class: stationary ARD kernel with signal variance.

    ``theta`` layout: ``[log(variance), log(ls_1), ..., log(ls_d)]``.
    """

    def __init__(self, dim: int, variance: float = 1.0, lengthscales=None) -> None:
        if dim < 1:
            raise ValueError("kernel dimension must be >= 1")
        self.dim = dim
        self.variance = float(variance)
        if lengthscales is None:
            self.lengthscales = np.full(dim, 0.3)
        else:
            ls = np.asarray(lengthscales, dtype=float).ravel()
            if ls.shape != (dim,):
                raise ValueError(f"need {dim} lengthscales, got shape {ls.shape}")
            self.lengthscales = ls.copy()
        if self.variance <= 0 or np.any(self.lengthscales <= 0):
            raise ValueError("variance and lengthscales must be positive")

    # -- hyperparameter vector --------------------------------------------
    @property
    def n_params(self) -> int:
        return 1 + self.dim

    def get_theta(self) -> np.ndarray:
        return np.concatenate([[np.log(self.variance)], np.log(self.lengthscales)])

    def set_theta(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float).ravel()
        if theta.shape != (self.n_params,):
            raise ValueError(f"expected {self.n_params} params, got {theta.shape}")
        self.variance = float(np.exp(theta[0]))
        self.lengthscales = np.exp(theta[1:])

    def bounds(self) -> list[tuple[float, float]]:
        """Log-space box bounds for MLE (generous but numerically safe)."""
        var_b = (np.log(1e-4), np.log(1e4))
        ls_b = (np.log(5e-3), np.log(20.0))
        return [var_b] + [ls_b] * self.dim

    # -- evaluation ----------------------------------------------------------
    @abstractmethod
    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix ``K[i, j] = k(X[i], Y[j])`` (``Y=None`` → X)."""

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(X.shape[0], self.variance)

    #: whether :meth:`gradient` is implemented
    has_gradient: bool = False

    def gradient(self, X: np.ndarray) -> np.ndarray:
        """``dK/dtheta`` stacked as ``(n_params, n, n)`` (optional)."""
        raise NotImplementedError

    def clone(self) -> "Kernel":
        return type(self)(self.dim, self.variance, self.lengthscales.copy())

    def __repr__(self) -> str:  # pragma: no cover
        ls = np.array2string(self.lengthscales, precision=3)
        return f"{type(self).__name__}(var={self.variance:.3g}, ls={ls})"


class RBF(Kernel):
    """Squared-exponential kernel with ARD lengthscales (analytic grads)."""

    has_gradient = True

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        Y = X if Y is None else Y
        d2 = sq_dists(X, Y, self.lengthscales)
        return self.variance * np.exp(-0.5 * d2)

    def gradient(self, X: np.ndarray) -> np.ndarray:
        K = self(X)
        n = X.shape[0]
        G = np.empty((self.n_params, n, n))
        G[0] = K  # d/d log(variance)
        # d/d log(ls_j) = K * d_j^2 / ls_j^2, all dims in one broadcast
        diff = (X[:, None, :] - X[None, :, :]) / self.lengthscales
        G[1:] = np.moveaxis(diff * diff, -1, 0)
        G[1:] *= K
        return G


class Matern52(Kernel):
    """Matern-5/2 kernel with ARD lengthscales."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        Y = X if Y is None else Y
        r = np.sqrt(sq_dists(X, Y, self.lengthscales))
        s = np.sqrt(5.0) * r
        return self.variance * (1.0 + s + s * s / 3.0) * np.exp(-s)


class Matern32(Kernel):
    """Matern-3/2 kernel with ARD lengthscales."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        Y = X if Y is None else Y
        r = np.sqrt(sq_dists(X, Y, self.lengthscales))
        s = np.sqrt(3.0) * r
        return self.variance * (1.0 + s) * np.exp(-s)


_KERNELS = {"rbf": RBF, "matern52": Matern52, "matern32": Matern32}


def kernel_from_name(name: str, dim: int, **kwargs) -> Kernel:
    """Instantiate a kernel by name (``rbf``, ``matern52``, ``matern32``)."""
    try:
        return _KERNELS[name](dim, **kwargs)
    except KeyError:
        raise ValueError(f"unknown kernel {name!r}; choose from {sorted(_KERNELS)}")
