"""Feasibility estimation from observed successes and failures.

Failed evaluations are excluded from surrogate *fitting* (paper
Sec. VI-C), but they still carry information: an out-of-memory region
stays out of memory.  :class:`KnnFeasibility` turns the success/failure
labels of all observed points — the target task's history plus any
source-task records, which the crowd database stores including failures —
into a smooth probability-of-feasibility estimate that the acquisition
search multiplies into its scores.

A distance-weighted k-nearest-neighbor vote keeps this assumption-free
(failure regions are usually axis-aligned manifolds like "npz too large",
which parametric classifiers underfit at tiny sample sizes) and costs
O(n_candidates * n_points) vectorized work per proposal.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KnnFeasibility"]


class KnnFeasibility:
    """P(feasible | x) from labelled unit-cube points.

    Parameters
    ----------
    X_ok, X_fail:
        Arrays of successful / failed points, shape ``(n, dim)`` (either
        may be empty).
    k:
        Neighbors per vote.
    smoothing:
        Laplace-style prior mass pulling estimates toward feasible; keeps
        unexplored regions explorable (a single nearby failure must not
        zero out a whole neighborhood).
    """

    def __init__(
        self,
        X_ok: np.ndarray,
        X_fail: np.ndarray,
        *,
        k: int = 5,
        smoothing: float = 1.0,
    ) -> None:
        X_ok = _as2d(X_ok)
        X_fail = _as2d(X_fail)
        if X_ok.shape[0] and X_fail.shape[0] and X_ok.shape[1] != X_fail.shape[1]:
            raise ValueError(
                f"dim mismatch: ok {X_ok.shape[1]} vs fail {X_fail.shape[1]}"
            )
        if k < 1:
            raise ValueError("k must be >= 1")
        self.X = np.vstack([x for x in (X_ok, X_fail) if x.shape[0]]) if (
            X_ok.shape[0] or X_fail.shape[0]
        ) else np.empty((0, max(X_ok.shape[1], X_fail.shape[1], 1)))
        self.labels = np.concatenate(
            [np.ones(X_ok.shape[0]), np.zeros(X_fail.shape[0])]
        )
        self.k = k
        self.smoothing = float(smoothing)

    @property
    def n_points(self) -> int:
        return int(self.labels.shape[0])

    @property
    def informative(self) -> bool:
        """Whether there is at least one failure to learn from."""
        return bool(np.any(self.labels == 0.0))

    def predict_proba(self, U: np.ndarray) -> np.ndarray:
        """P(feasible) for each row of ``U`` (all ones with no data)."""
        U = _as2d(U)
        if self.n_points == 0 or not self.informative:
            return np.ones(U.shape[0])
        d2 = (
            np.sum(U * U, axis=1)[:, None]
            + np.sum(self.X * self.X, axis=1)[None, :]
            - 2.0 * (U @ self.X.T)
        )
        d2 = np.maximum(d2, 0.0)
        k = min(self.k, self.n_points)
        idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        rows = np.arange(U.shape[0])[:, None]
        w = 1.0 / (np.sqrt(d2[rows, idx]) + 1e-3)
        votes = self.labels[idx]
        p = (np.sum(w * votes, axis=1) + self.smoothing) / (
            np.sum(w, axis=1) + self.smoothing
        )
        return np.clip(p, 0.0, 1.0)


def _as2d(X) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.size == 0:
        return X.reshape(0, X.shape[1] if X.ndim == 2 else 1)
    return np.atleast_2d(X)
