"""Search-space definitions for autotuning problems.

This module implements system S1 of DESIGN.md: the parameter and space
abstractions behind GPTuneCrowd's meta description (paper Sec. IV-A).
A :class:`Space` is an ordered collection of typed parameters.  Task
("input") spaces, tuning ("parameter") spaces and output spaces are all
plain :class:`Space` objects; :mod:`repro.core.problem` wires them into a
tuning problem.

All surrogate modeling happens in the *unit hypercube*: every parameter
knows how to map its values to ``[0, 1]`` and back.  Integer parameters
use half-open ``[low, high)`` ranges to match the paper's meta-description
convention (``lower_bound``/``upper_bound``); categorical parameters are
ordinally encoded (index mapped to the unit interval), which is what the
original GPTune implementation does for its LCM models.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = [
    "Parameter",
    "RealParameter",
    "IntegerParameter",
    "CategoricalParameter",
    "OutputParameter",
    "Space",
    "SpaceError",
]


class SpaceError(ValueError):
    """Raised for malformed parameters, spaces, or out-of-range values."""


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not name:
        raise SpaceError(f"parameter name must be a non-empty string, got {name!r}")
    return name


class Parameter(ABC):
    """A single named, typed tuning/task parameter.

    Subclasses implement the bijection between native values and the unit
    interval used by surrogate models, plus sampling and validation.
    """

    #: short type tag used in serialized meta descriptions
    type_tag: str = "abstract"

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)

    # -- mapping ---------------------------------------------------------
    @abstractmethod
    def to_unit(self, value: Any) -> float:
        """Map a native value into ``[0, 1]``."""

    @abstractmethod
    def from_unit(self, u: float) -> Any:
        """Map a unit-interval coordinate back to a native value."""

    # -- validation / sampling -------------------------------------------
    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Whether ``value`` is a legal value for this parameter."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value uniformly at random."""

    @abstractmethod
    def grid(self, max_points: int = 64) -> list[Any]:
        """A representative finite set of values (for exhaustive sweeps)."""

    # -- serialization -----------------------------------------------------
    @abstractmethod
    def to_dict(self) -> dict[str, Any]:
        """Serialize to the paper's meta-description JSON form."""

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "Parameter":
        """Deserialize a parameter from a meta-description entry.

        Accepts the paper's field names: ``name``, ``type`` in
        ``{"integer", "real", "categorical"}``, ``lower_bound`` /
        ``upper_bound`` or ``categories``.
        """
        kind = doc.get("type", "real")
        name = doc.get("name")
        if name is None:
            raise SpaceError(f"parameter entry missing 'name': {doc!r}")
        if kind == "integer":
            return IntegerParameter(name, doc["lower_bound"], doc["upper_bound"])
        if kind == "real":
            return RealParameter(name, doc["lower_bound"], doc["upper_bound"])
        if kind == "categorical":
            return CategoricalParameter(name, doc["categories"])
        if kind == "output":
            return OutputParameter(name)
        raise SpaceError(f"unknown parameter type {kind!r} in {doc!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.to_dict()!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Parameter) and self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))


class RealParameter(Parameter):
    """A continuous parameter on the half-open interval ``[low, high)``."""

    type_tag = "real"

    def __init__(self, name: str, low: float, high: float) -> None:
        super().__init__(name)
        low, high = float(low), float(high)
        if not (math.isfinite(low) and math.isfinite(high)):
            raise SpaceError(f"{name}: bounds must be finite, got [{low}, {high})")
        if not low < high:
            raise SpaceError(f"{name}: need low < high, got [{low}, {high})")
        self.low = low
        self.high = high

    def to_unit(self, value: Any) -> float:
        v = float(value)
        if not self.contains(v):
            raise SpaceError(f"{self.name}: value {v} outside [{self.low}, {self.high})")
        return (v - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        u = min(max(float(u), 0.0), 1.0)
        v = self.low + u * (self.high - self.low)
        # keep strictly inside the half-open interval
        return min(v, np.nextafter(self.high, self.low))

    def contains(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return self.low <= v < self.high or math.isclose(v, self.low)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def grid(self, max_points: int = 64) -> list[float]:
        pts = np.linspace(self.low, self.high, max_points, endpoint=False)
        return [float(p) for p in pts]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "type": "real",
            "lower_bound": self.low,
            "upper_bound": self.high,
        }


class IntegerParameter(Parameter):
    """An integer parameter on the half-open range ``[low, high)``.

    Matches the paper's meta-description convention: Table II's ``mb`` has
    range ``[1, 16)`` meaning values ``1..15``.
    """

    type_tag = "integer"

    def __init__(self, name: str, low: int, high: int) -> None:
        super().__init__(name)
        low_i, high_i = int(low), int(high)
        if low_i != low or high_i != high:
            raise SpaceError(f"{name}: integer bounds must be whole numbers")
        if not low_i < high_i:
            raise SpaceError(f"{name}: need low < high, got [{low_i}, {high_i})")
        self.low = low_i
        self.high = high_i

    @property
    def n_values(self) -> int:
        return self.high - self.low

    def to_unit(self, value: Any) -> float:
        v = int(value)
        if not self.contains(v):
            raise SpaceError(f"{self.name}: value {v} outside [{self.low}, {self.high})")
        if self.n_values == 1:
            return 0.5
        # center of the value's cell in [0, 1)
        return (v - self.low + 0.5) / self.n_values

    def from_unit(self, u: float) -> int:
        u = min(max(float(u), 0.0), 1.0)
        v = self.low + int(u * self.n_values)
        return min(v, self.high - 1)

    def contains(self, value: Any) -> bool:
        try:
            v = int(value)
        except (TypeError, ValueError):
            return False
        return v == value and self.low <= v < self.high

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high))

    def grid(self, max_points: int = 64) -> list[int]:
        if self.n_values <= max_points:
            return list(range(self.low, self.high))
        pts = np.unique(np.linspace(self.low, self.high - 1, max_points).astype(int))
        return [int(p) for p in pts]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "type": "integer",
            "lower_bound": self.low,
            "upper_bound": self.high,
        }


class CategoricalParameter(Parameter):
    """A categorical parameter over an explicit list of choices.

    Choices are ordinally encoded into the unit interval (each category
    owns an equal-width cell) so surrogate models see a single coordinate,
    matching GPTune's handling of categorical variables.
    """

    type_tag = "categorical"

    def __init__(self, name: str, categories: Sequence[Any]) -> None:
        super().__init__(name)
        cats = list(categories)
        if not cats:
            raise SpaceError(f"{name}: categorical parameter needs at least one choice")
        if len(set(map(str, cats))) != len(cats):
            raise SpaceError(f"{name}: duplicate categories in {cats!r}")
        self.categories = cats
        self._index = {c: i for i, c in enumerate(cats)}

    @property
    def n_values(self) -> int:
        return len(self.categories)

    def to_unit(self, value: Any) -> float:
        if value not in self._index:
            raise SpaceError(f"{self.name}: {value!r} not among {self.categories!r}")
        if self.n_values == 1:
            return 0.5
        return (self._index[value] + 0.5) / self.n_values

    def from_unit(self, u: float) -> Any:
        u = min(max(float(u), 0.0), 1.0)
        idx = min(int(u * self.n_values), self.n_values - 1)
        return self.categories[idx]

    def contains(self, value: Any) -> bool:
        return value in self._index

    def sample(self, rng: np.random.Generator) -> Any:
        return self.categories[int(rng.integers(0, self.n_values))]

    def grid(self, max_points: int = 64) -> list[Any]:
        return list(self.categories[:max_points])

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "type": "categorical",
            "categories": list(self.categories),
        }


class OutputParameter(Parameter):
    """An output (objective) value, e.g. measured runtime.

    Outputs are unbounded reals; they exist so output spaces serialize the
    same way input/parameter spaces do in the meta description.
    """

    type_tag = "output"

    def to_unit(self, value: Any) -> float:
        raise SpaceError("output parameters have no unit-cube embedding")

    def from_unit(self, u: float) -> Any:
        raise SpaceError("output parameters have no unit-cube embedding")

    def contains(self, value: Any) -> bool:
        try:
            return math.isfinite(float(value))
        except (TypeError, ValueError):
            return False

    def sample(self, rng: np.random.Generator) -> float:
        raise SpaceError("output parameters cannot be sampled")

    def grid(self, max_points: int = 64) -> list[Any]:
        raise SpaceError("output parameters have no grid")

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "type": "output"}


@dataclass(frozen=True)
class Space:
    """An ordered, named collection of parameters.

    Provides vectorized conversion between configuration dicts and points
    in the unit hypercube, uniform sampling, validation, and space surgery
    (:meth:`subspace` / :meth:`fix`) used by sensitivity-driven search-space
    reduction (paper Sec. VI-D/E).
    """

    parameters: tuple[Parameter, ...]

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        params = tuple(parameters)
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise SpaceError(f"duplicate parameter names in {names}")
        object.__setattr__(self, "parameters", params)

    # -- basic introspection ----------------------------------------------
    @property
    def dim(self) -> int:
        return len(self.parameters)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def __len__(self) -> int:
        return self.dim

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self.parameters)

    def __getitem__(self, key: str | int) -> Parameter:
        if isinstance(key, int):
            return self.parameters[key]
        for p in self.parameters:
            if p.name == key:
                return p
        raise KeyError(key)

    def __contains__(self, name: object) -> bool:
        return any(p.name == name for p in self.parameters)

    # -- conversion ---------------------------------------------------------
    def to_unit(self, config: Mapping[str, Any]) -> np.ndarray:
        """Map a configuration dict to a point in ``[0, 1]^dim``."""
        missing = [p.name for p in self.parameters if p.name not in config]
        if missing:
            raise SpaceError(f"configuration missing parameters {missing}")
        return np.array([p.to_unit(config[p.name]) for p in self.parameters])

    def from_unit(self, u: Sequence[float]) -> dict[str, Any]:
        """Map a unit-cube point back to a configuration dict."""
        u = np.asarray(u, dtype=float)
        if u.shape != (self.dim,):
            raise SpaceError(f"expected shape ({self.dim},), got {u.shape}")
        return {p.name: p.from_unit(ui) for p, ui in zip(self.parameters, u)}

    def to_unit_array(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Stack many configurations into an ``(n, dim)`` unit array."""
        if len(configs) == 0:
            return np.empty((0, self.dim))
        return np.vstack([self.to_unit(c) for c in configs])

    def from_unit_array(self, U: np.ndarray) -> list[dict[str, Any]]:
        U = np.atleast_2d(np.asarray(U, dtype=float))
        return [self.from_unit(row) for row in U]

    # -- validation / sampling ------------------------------------------------
    def contains(self, config: Mapping[str, Any]) -> bool:
        return all(p.name in config and p.contains(config[p.name]) for p in self.parameters)

    def validate(self, config: Mapping[str, Any]) -> None:
        for p in self.parameters:
            if p.name not in config:
                raise SpaceError(f"configuration missing parameter {p.name!r}")
            if not p.contains(config[p.name]):
                raise SpaceError(
                    f"value {config[p.name]!r} invalid for parameter {p.name!r} ({p.to_dict()})"
                )

    def sample(self, rng: np.random.Generator) -> dict[str, Any]:
        """Draw one uniformly random configuration."""
        return {p.name: p.sample(rng) for p in self.parameters}

    def sample_many(self, n: int, rng: np.random.Generator) -> list[dict[str, Any]]:
        return [self.sample(rng) for _ in range(n)]

    # -- surgery ---------------------------------------------------------------
    def subspace(self, names: Sequence[str]) -> "Space":
        """The sub-space containing only the named parameters (in given order)."""
        unknown = [n for n in names if n not in self]
        if unknown:
            raise SpaceError(f"unknown parameters {unknown}; space has {self.names}")
        return Space([self[n] for n in names])

    def drop(self, names: Sequence[str]) -> "Space":
        """The sub-space excluding the named parameters."""
        names_set = set(names)
        unknown = names_set - set(self.names)
        if unknown:
            raise SpaceError(f"unknown parameters {sorted(unknown)}")
        return Space([p for p in self.parameters if p.name not in names_set])

    def fix(self, values: Mapping[str, Any]) -> "FixedSpace":
        """Pin some parameters to constants, tuning only the rest.

        This is the mechanism behind the paper's reduced tuning problems
        (Fig. 6 and Fig. 7): insensitive parameters are deactivated at
        default values while the remaining ones are tuned.
        """
        for name, value in values.items():
            if name not in self:
                raise SpaceError(f"cannot fix unknown parameter {name!r}")
            if not self[name].contains(value):
                raise SpaceError(f"fixed value {value!r} invalid for {name!r}")
        free = self.drop(list(values))
        return FixedSpace(free.parameters, dict(values))

    # -- serialization ------------------------------------------------------------
    def to_list(self) -> list[dict[str, Any]]:
        return [p.to_dict() for p in self.parameters]

    @staticmethod
    def from_list(docs: Sequence[Mapping[str, Any]]) -> "Space":
        return Space([Parameter.from_dict(d) for d in docs])


class FixedSpace(Space):
    """A :class:`Space` with some parameters pinned to constant values.

    Behaves as the free sub-space for modeling/sampling purposes, but
    configuration dicts produced by :meth:`from_unit` / :meth:`sample`
    include the pinned values so objectives always see full configurations.
    """

    fixed: dict[str, Any]

    def __init__(self, parameters: Iterable[Parameter], fixed: Mapping[str, Any]) -> None:
        super().__init__(parameters)
        object.__setattr__(self, "fixed", dict(fixed))

    def from_unit(self, u: Sequence[float]) -> dict[str, Any]:
        config = super().from_unit(u)
        config.update(self.fixed)
        return config

    def to_unit(self, config: Mapping[str, Any]) -> np.ndarray:
        # ignore pinned entries; only embed the free coordinates
        free = {k: v for k, v in config.items() if k not in self.fixed}
        return super().to_unit(free)

    def sample(self, rng: np.random.Generator) -> dict[str, Any]:
        config = super().sample(rng)
        config.update(self.fixed)
        return config

    def contains(self, config: Mapping[str, Any]) -> bool:
        if not super().contains(config):
            return False
        return all(config.get(k) == v for k, v in self.fixed.items() if k in config)
