"""Task-aware surrogates: predictions for unseen tasks.

GPTuneCrowd's ``QueryPredictOutput`` promises performance prediction
from crowd data.  Within one task a plain GP suffices; across tasks the
crowd holds samples for *many* tasks and a user often wants a prediction
for a task nobody measured (e.g. "how long will m=n=12000 take?").

:class:`TaskAwareSurrogate` fits a single GP over the joint unit cube
``[task parameters | tuning parameters]``, so predictions interpolate
across both axes at once.  This is the regression analogue of the LCM's
task correlation: where the LCM learns a free-form task covariance from
task *indices*, the joint GP exploits the task parameters' geometry —
exactly right when task parameters are sizes (PDGEQRF's m/n, Hypre's
grid dimensions) whose effect on runtime is smooth.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from .gp import GaussianProcess
from .kernels import kernel_from_name
from .space import Space

__all__ = ["TaskAwareSurrogate"]


class TaskAwareSurrogate:
    """GP over the joint (task, configuration) unit cube.

    Parameters
    ----------
    input_space:
        The task-parameter space.
    parameter_space:
        The tuning-parameter space.
    kernel:
        Kernel name over the joint cube (default ARD RBF: one learned
        lengthscale per task *and* tuning dimension).
    log_output:
        Model ``log(y)`` instead of ``y``; the right choice for runtimes,
        whose scale varies multiplicatively across task sizes.
    """

    def __init__(
        self,
        input_space: Space,
        parameter_space: Space,
        *,
        kernel: str = "rbf",
        log_output: bool = True,
        gp_max_fun: int = 120,
        gp_restarts: int = 1,
        seed: int | None = None,
    ) -> None:
        self.input_space = input_space
        self.parameter_space = parameter_space
        self.log_output = log_output
        self._dim = input_space.dim + parameter_space.dim
        self._gp = GaussianProcess(
            kernel_from_name(kernel, self._dim),
            max_fun=gp_max_fun,
            n_restarts=gp_restarts,
            seed=seed,
        )
        self._n_tasks_seen = 0

    # -- encoding --------------------------------------------------------
    def _encode(
        self, tasks: Sequence[Mapping[str, Any]], configs: Sequence[Mapping[str, Any]]
    ) -> np.ndarray:
        if len(tasks) != len(configs):
            raise ValueError(
                f"{len(tasks)} tasks vs {len(configs)} configurations"
            )
        T = self.input_space.to_unit_array(list(tasks))
        C = self.parameter_space.to_unit_array(list(configs))
        return np.hstack([T, C])

    # -- fitting -----------------------------------------------------------
    def fit(
        self,
        tasks: Sequence[Mapping[str, Any]],
        configs: Sequence[Mapping[str, Any]],
        outputs: Sequence[float],
    ) -> "TaskAwareSurrogate":
        """Fit on pooled samples from any number of tasks."""
        y = np.asarray(list(outputs), dtype=float)
        if y.size < 2:
            raise ValueError("need at least two samples to fit")
        if self.log_output:
            if np.any(y <= 0):
                raise ValueError("log_output requires strictly positive outputs")
            y = np.log(y)
        X = self._encode(tasks, configs)
        self._gp.fit(X, y)
        self._n_tasks_seen = len({tuple(sorted(t.items())) for t in tasks})
        return self

    @property
    def fitted(self) -> bool:
        return self._gp.fitted

    @property
    def n_tasks_seen(self) -> int:
        return self._n_tasks_seen

    # -- prediction -------------------------------------------------------------
    def predict(
        self,
        task: Mapping[str, Any],
        configs: Sequence[Mapping[str, Any]],
        return_std: bool = False,
    ):
        """Predicted outputs for configurations on a (possibly unseen) task."""
        if not self.fitted:
            raise RuntimeError("predict() before fit()")
        X = self._encode([task] * len(configs), configs)
        mean, std = self._gp.predict(X)
        if self.log_output:
            # log-normal moments back in the original scale
            var = std**2
            out_mean = np.exp(mean + 0.5 * var)
            if not return_std:
                return out_mean
            out_std = out_mean * np.sqrt(np.maximum(np.exp(var) - 1.0, 0.0))
            return out_mean, out_std
        return (mean, std) if return_std else mean

    def predict_best_config(
        self,
        task: Mapping[str, Any],
        *,
        n_candidates: int = 2048,
        rng: np.random.Generator | None = None,
    ) -> tuple[dict[str, Any], float]:
        """The model's recommended configuration for a new task.

        This is the zero-evaluation transfer mode: before spending any
        budget, ask the crowd model where the optimum probably is.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        configs = [self.parameter_space.sample(rng) for _ in range(n_candidates)]
        preds = self.predict(task, configs)
        i = int(np.argmin(preds))
        return configs[i], float(preds[i])
