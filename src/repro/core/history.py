"""Evaluation histories and best-so-far trajectories.

The tuner appends every function evaluation to a :class:`History`.  The
history provides the two views every experiment in the paper needs:

* the *successful* evaluations as ``(X_unit, y)`` arrays for surrogate
  fitting (failures excluded, Sec. VI-C), and
* the *best-so-far* trajectory over evaluation count, which is what every
  figure in the paper plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from .problem import Evaluation
from .space import Space

__all__ = ["History", "TaskData"]


@dataclass
class TaskData:
    """A source/target dataset for one task, in model coordinates.

    ``X`` is the ``(n, dim)`` unit-cube array of configurations and ``y``
    the corresponding outputs.  This is the currency of the TLA layer: the
    crowd API turns queried performance records into ``TaskData`` objects
    and the TLA algorithms consume them.
    """

    task: dict[str, Any]
    X: np.ndarray
    y: np.ndarray
    label: str = ""
    #: configurations whose evaluation failed (OOM etc.); excluded from
    #: surrogate fitting but used for feasibility estimation
    X_failed: np.ndarray | None = None

    def __post_init__(self) -> None:
        X = np.asarray(self.X, dtype=float)
        if X.ndim == 1:  # a single column of 1-D inputs
            X = X[:, None]
        self.X = np.atleast_2d(X)
        self.y = np.asarray(self.y, dtype=float).ravel()
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"X has {self.X.shape[0]} rows but y has {self.y.shape[0]} entries"
            )
        if self.X_failed is None:
            self.X_failed = np.empty((0, self.X.shape[1] if self.X.size else 1))
        else:
            Xf = np.asarray(self.X_failed, dtype=float)
            if Xf.ndim == 1 and Xf.size:
                Xf = Xf[:, None]
            self.X_failed = np.atleast_2d(Xf) if Xf.size else Xf.reshape(0, self.X.shape[1])

    @property
    def n(self) -> int:
        return int(self.y.shape[0])

    @property
    def dim(self) -> int:
        return int(self.X.shape[1])

    def best(self) -> tuple[np.ndarray, float]:
        """The best (lowest-output) observation."""
        if self.n == 0:
            raise ValueError("empty dataset has no best observation")
        i = int(np.argmin(self.y))
        return self.X[i], float(self.y[i])

    def subsample(self, n_max: int, rng: np.random.Generator) -> "TaskData":
        """Uniformly subsample to at most ``n_max`` points (keeps the best)."""
        if self.n <= n_max:
            return self
        best_i = int(np.argmin(self.y))
        others = np.setdiff1d(np.arange(self.n), [best_i])
        keep = rng.choice(others, size=n_max - 1, replace=False)
        idx = np.sort(np.concatenate([[best_i], keep]))
        return TaskData(self.task, self.X[idx], self.y[idx], self.label, self.X_failed)


class History:
    """An append-only log of evaluations for one (task, space) tuning run."""

    def __init__(self, task: Mapping[str, Any], space: Space) -> None:
        self.task = dict(task)
        self.space = space
        self.evaluations: list[Evaluation] = []

    # -- mutation -----------------------------------------------------------
    def append(self, evaluation: Evaluation) -> None:
        self.evaluations.append(evaluation)

    def extend(self, evaluations: Sequence[Evaluation]) -> None:
        for e in evaluations:
            self.append(e)

    # -- views ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.evaluations)

    def __iter__(self) -> Iterator[Evaluation]:
        return iter(self.evaluations)

    @property
    def n_successes(self) -> int:
        return sum(1 for e in self.evaluations if not e.failed)

    @property
    def n_failures(self) -> int:
        return sum(1 for e in self.evaluations if e.failed)

    def successes(self) -> list[Evaluation]:
        return [e for e in self.evaluations if not e.failed]

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Successful evaluations as ``(X_unit, y)`` for model fitting."""
        ok = self.successes()
        X = self.space.to_unit_array([e.config for e in ok])
        y = np.array([e.output for e in ok], dtype=float)
        return X, y

    def as_task_data(self, label: str = "target") -> TaskData:
        X, y = self.arrays()
        return TaskData(dict(self.task), X, y, label=label)

    def configs(self) -> list[dict[str, Any]]:
        """All attempted configurations (including failures), for dedup."""
        return [e.config for e in self.evaluations]

    def failed_array(self) -> np.ndarray:
        """Failed configurations as a unit-cube array (tabu regions)."""
        failed = [e.config for e in self.evaluations if e.failed]
        return self.space.to_unit_array(failed)

    # -- results ----------------------------------------------------------------
    def best(self) -> Evaluation:
        ok = self.successes()
        if not ok:
            raise ValueError("no successful evaluations yet")
        return min(ok, key=lambda e: e.output)

    def best_output(self) -> float:
        return float(self.best().output)

    def best_so_far(self) -> list[float]:
        """Best output after each evaluation (NaN until the first success).

        This is exactly the series plotted in the paper's Figures 3-7;
        leading NaNs reproduce the paper's "we do not draw points if the
        runs had failures" convention for Fig. 5(c).
        """
        out: list[float] = []
        best = math.nan
        for e in self.evaluations:
            if not e.failed and not (best <= e.output):  # NaN-safe min
                best = float(e.output)
            out.append(best)
        return out

    # -- serialization -------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "task": dict(self.task),
            "space": self.space.to_list(),
            "evaluations": [e.to_dict() for e in self.evaluations],
        }

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "History":
        hist = History(doc["task"], Space.from_list(doc["space"]))
        hist.extend([Evaluation.from_dict(d) for d in doc["evaluations"]])
        return hist
