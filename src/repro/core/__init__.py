"""Core autotuning engine: spaces, surrogates, acquisition, BO loop.

This package implements systems S1-S6 of DESIGN.md — the GPTune-style
Bayesian-optimization core that both the NoTLA baseline and every
transfer-learning algorithm in :mod:`repro.tla` build on.
"""

from . import perf
from .acquisition import (
    ExpectedImprovement,
    LowerConfidenceBound,
    PendingPenalty,
    get_acquisition,
)
from .combine import combine_stacked, normalized_weight_matrix, normalized_weights
from .feasibility import KnnFeasibility
from .frozen import FrozenGP, frozen_view
from .gp import GaussianProcess, GPFitError
from .history import History, TaskData
from .kernels import RBF, Matern32, Matern52, kernel_from_name
from .lcm import LCM, LCMFitError
from .mixed import MixedKernel, mixed_kernel_for_space
from .optimizer import SearchOptions, propose_batch, search_next
from .problem import Evaluation, TuningProblem, task_key
from .samplers import (
    LatinHypercubeSampler,
    RandomSampler,
    Sampler,
    SobolSampler,
    get_sampler,
)
from .sparse import (
    PartitionedGP,
    SparseGP,
    make_surrogate,
    resolve_surrogate_kind,
    select_inducing,
    surrogate_from_dict,
)
from .taskmodel import TaskAwareSurrogate
from .space import (
    CategoricalParameter,
    FixedSpace,
    IntegerParameter,
    OutputParameter,
    Parameter,
    RealParameter,
    Space,
    SpaceError,
)
from .tuner import Tuner, TunerOptions, TuningResult

__all__ = [
    "CategoricalParameter",
    "Evaluation",
    "ExpectedImprovement",
    "FixedSpace",
    "FrozenGP",
    "GaussianProcess",
    "GPFitError",
    "History",
    "IntegerParameter",
    "KnnFeasibility",
    "LCM",
    "LCMFitError",
    "LatinHypercubeSampler",
    "LowerConfidenceBound",
    "Matern32",
    "Matern52",
    "MixedKernel",
    "OutputParameter",
    "Parameter",
    "PartitionedGP",
    "PendingPenalty",
    "RBF",
    "RandomSampler",
    "RealParameter",
    "Sampler",
    "SearchOptions",
    "SobolSampler",
    "SparseGP",
    "Space",
    "SpaceError",
    "TaskAwareSurrogate",
    "TaskData",
    "Tuner",
    "TunerOptions",
    "TuningProblem",
    "TuningResult",
    "combine_stacked",
    "frozen_view",
    "get_acquisition",
    "get_sampler",
    "kernel_from_name",
    "make_surrogate",
    "mixed_kernel_for_space",
    "normalized_weight_matrix",
    "normalized_weights",
    "perf",
    "propose_batch",
    "resolve_surrogate_kind",
    "search_next",
    "select_inducing",
    "surrogate_from_dict",
    "task_key",
]
