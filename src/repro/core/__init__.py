"""Core autotuning engine: spaces, surrogates, acquisition, BO loop.

This package implements systems S1-S6 of DESIGN.md — the GPTune-style
Bayesian-optimization core that both the NoTLA baseline and every
transfer-learning algorithm in :mod:`repro.tla` build on.
"""

from . import perf
from .acquisition import (
    ExpectedImprovement,
    LowerConfidenceBound,
    PendingPenalty,
    get_acquisition,
)
from .feasibility import KnnFeasibility
from .gp import GaussianProcess, GPFitError
from .history import History, TaskData
from .kernels import RBF, Matern32, Matern52, kernel_from_name
from .lcm import LCM, LCMFitError
from .mixed import MixedKernel, mixed_kernel_for_space
from .optimizer import SearchOptions, propose_batch, search_next
from .problem import Evaluation, TuningProblem, task_key
from .samplers import (
    LatinHypercubeSampler,
    RandomSampler,
    Sampler,
    SobolSampler,
    get_sampler,
)
from .taskmodel import TaskAwareSurrogate
from .space import (
    CategoricalParameter,
    FixedSpace,
    IntegerParameter,
    OutputParameter,
    Parameter,
    RealParameter,
    Space,
    SpaceError,
)
from .tuner import Tuner, TunerOptions, TuningResult

__all__ = [
    "CategoricalParameter",
    "Evaluation",
    "ExpectedImprovement",
    "FixedSpace",
    "GaussianProcess",
    "GPFitError",
    "History",
    "IntegerParameter",
    "KnnFeasibility",
    "LCM",
    "LCMFitError",
    "LatinHypercubeSampler",
    "LowerConfidenceBound",
    "Matern32",
    "Matern52",
    "MixedKernel",
    "OutputParameter",
    "Parameter",
    "PendingPenalty",
    "RBF",
    "RandomSampler",
    "RealParameter",
    "Sampler",
    "SearchOptions",
    "SobolSampler",
    "Space",
    "SpaceError",
    "TaskAwareSurrogate",
    "TaskData",
    "Tuner",
    "TunerOptions",
    "TuningProblem",
    "TuningResult",
    "get_acquisition",
    "get_sampler",
    "kernel_from_name",
    "mixed_kernel_for_space",
    "perf",
    "propose_batch",
    "search_next",
    "task_key",
]
