"""Tuning-problem definitions (paper Sec. IV-A meta description).

A :class:`TuningProblem` bundles the three spaces of the GPTuneCrowd meta
description — the *input space* (task parameters), the *parameter space*
(tuning parameters) and the *output space* — with the black-box objective
to be minimized.  Objectives receive a task dict and a configuration dict
and return either a finite float (e.g. measured runtime in seconds) or
``None`` to signal a failed evaluation (e.g. the out-of-memory failures
the paper describes for NIMROD, Sec. VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from .space import Space, SpaceError

__all__ = ["TuningProblem", "Evaluation", "task_key"]

Objective = Callable[[Mapping[str, Any], Mapping[str, Any]], float | None]


def task_key(task: Mapping[str, Any]) -> tuple:
    """A hashable, order-independent key identifying a task.

    Used to group performance records belonging to the same task when
    assembling transfer-learning source datasets.
    """
    return tuple(sorted((str(k), repr(v)) for k, v in task.items()))


@dataclass
class Evaluation:
    """One function evaluation: task + configuration + observed output.

    ``output is None`` marks a failed run; failed runs consume tuning
    budget but are excluded from surrogate fitting, matching the paper's
    treatment of bad configurations (Sec. VI-C).
    """

    task: dict[str, Any]
    config: dict[str, Any]
    output: float | None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.output is None or not np.isfinite(self.output)

    def to_dict(self) -> dict[str, Any]:
        return {
            "task": dict(self.task),
            "config": dict(self.config),
            "output": self.output,
            "metadata": dict(self.metadata),
        }

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "Evaluation":
        return Evaluation(
            task=dict(doc["task"]),
            config=dict(doc["config"]),
            output=doc.get("output"),
            metadata=dict(doc.get("metadata", {})),
        )


@dataclass
class TuningProblem:
    """A black-box minimization problem over a tuning-parameter space.

    Parameters
    ----------
    name:
        The tuning problem name; identifies the problem in the crowd
        repository (paper: ``tuning_problem_name``).
    input_space:
        Task parameters (problem sizes, input files, ...).
    parameter_space:
        Tuning parameters to optimize.
    output_space:
        Objective outputs; the first output is minimized.
    objective:
        ``objective(task, config) -> float | None``.
    constraint:
        Optional fast feasibility predicate ``constraint(task, config) ->
        bool``; infeasible configurations are rejected before evaluation.
    """

    name: str
    input_space: Space
    parameter_space: Space
    output_space: Space
    objective: Objective
    constraint: Callable[[Mapping[str, Any], Mapping[str, Any]], bool] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpaceError("tuning problem needs a non-empty name")
        overlap = set(self.input_space.names) & set(self.parameter_space.names)
        if overlap:
            raise SpaceError(
                f"task and tuning parameters must not overlap, both define {sorted(overlap)}"
            )

    # -- evaluation ------------------------------------------------------
    def feasible(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> bool:
        if self.constraint is None:
            return True
        return bool(self.constraint(task, config))

    def evaluate(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> Evaluation:
        """Validate, run the objective, and wrap the result.

        Objective exceptions and constraint violations are converted to
        failed evaluations rather than propagated: a crowd tuner must
        survive bad configurations suggested by its own search.
        """
        self.input_space.validate(task)
        self.parameter_space.validate(config)
        if not self.feasible(task, config):
            return Evaluation(dict(task), dict(config), None, {"failure": "constraint"})
        try:
            y = self.objective(task, config)
        except Exception as exc:  # objective crashes count as failures
            return Evaluation(dict(task), dict(config), None, {"failure": repr(exc)})
        if y is None or not np.isfinite(y):
            return Evaluation(dict(task), dict(config), None, {"failure": "non-finite"})
        return Evaluation(dict(task), dict(config), float(y))

    # -- convenience -----------------------------------------------------
    def with_parameter_space(self, space: Space) -> "TuningProblem":
        """The same problem over a different (e.g. reduced) tuning space."""
        return TuningProblem(
            name=self.name,
            input_space=self.input_space,
            parameter_space=space,
            output_space=self.output_space,
            objective=self.objective,
            constraint=self.constraint,
        )

    def describe(self) -> dict[str, Any]:
        """The problem's meta-description ``problem_space`` block."""
        return {
            "input_space": self.input_space.to_list(),
            "parameter_space": self.parameter_space.to_list(),
            "output_space": self.output_space.to_list(),
        }
