"""Acquisition functions for Bayesian optimization (system S4).

Acquisitions consume a *predict function* ``predict(X) -> (mean, std)``
rather than a model object, so single-task GPs, LCMs and all the combined
TLA surrogates (weighted sums, stacks) plug in uniformly.

All problems are minimization (runtime, memory), matching the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np
from scipy import special

from . import perf

__all__ = [
    "Acquisition",
    "ExpectedImprovement",
    "LowerConfidenceBound",
    "PendingPenalty",
    "get_acquisition",
]

PredictFn = Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]]

_SQRT2 = float(np.sqrt(2.0))


def _norm_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z * z) / np.sqrt(2.0 * np.pi)


def _norm_cdf(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + special.erf(z / _SQRT2))


class Acquisition(ABC):
    """Scores candidate points; higher is better (maximized by the search)."""

    name = "abstract"

    @abstractmethod
    def __call__(
        self, predict: PredictFn, X: np.ndarray, y_best: float
    ) -> np.ndarray:
        """Acquisition values for candidate rows of ``X``."""


class ExpectedImprovement(Acquisition):
    """EI for minimization: ``E[max(y_best - f(x) - xi, 0)]``.

    ``xi`` is a small exploration margin.  Degenerate standard deviations
    collapse EI to the deterministic improvement, keeping the search
    well-defined when a surrogate interpolates exactly.
    """

    name = "ei"

    def __init__(self, xi: float = 0.0) -> None:
        self.xi = float(xi)

    def __call__(self, predict: PredictFn, X: np.ndarray, y_best: float) -> np.ndarray:
        perf.incr("acquisition_evaluations", X.shape[0])
        mean, std = predict(X)
        mean = np.asarray(mean, dtype=float).ravel()
        std = np.asarray(std, dtype=float).ravel()
        improve = y_best - mean - self.xi
        with np.errstate(divide="ignore", invalid="ignore"):
            z = np.where(std > 0, improve / std, 0.0)
            ei = np.where(
                std > 0,
                improve * _norm_cdf(z) + std * _norm_pdf(z),
                np.maximum(improve, 0.0),
            )
        return np.maximum(ei, 0.0)


class LowerConfidenceBound(Acquisition):
    """LCB for minimization, returned negated so "higher is better"."""

    name = "lcb"

    def __init__(self, beta: float = 2.0) -> None:
        self.beta = float(beta)

    def __call__(self, predict: PredictFn, X: np.ndarray, y_best: float) -> np.ndarray:
        perf.incr("acquisition_evaluations", X.shape[0])
        mean, std = predict(X)
        return -(np.asarray(mean).ravel() - self.beta * np.asarray(std).ravel())


class PendingPenalty(Acquisition):
    """Damp a base acquisition around configurations already in flight.

    The model-agnostic fallback for batch/asynchronous proposal when the
    surrogate offers no cheap fantasy update (combined TLA predictors):
    scores decay linearly to zero within ``radius`` of the nearest
    pending unit point, so a batch spreads out instead of proposing the
    same argmax q times.  With no pending points this is the identity.
    """

    name = "pending-penalty"

    def __init__(
        self, base: Acquisition, X_pending: np.ndarray | None, radius: float = 0.1
    ) -> None:
        if radius <= 0:
            raise ValueError("penalty radius must be positive")
        self.base = base
        Xp = None if X_pending is None else np.atleast_2d(np.asarray(X_pending, float))
        self.X_pending = None if Xp is None or Xp.shape[0] == 0 else Xp
        self.radius = float(radius)

    def __call__(self, predict: PredictFn, X: np.ndarray, y_best: float) -> np.ndarray:
        s = self.base(predict, X, y_best)
        if self.X_pending is None:
            return s
        Xp = self.X_pending
        d2 = (
            np.sum(X * X, axis=1)[:, None]
            + np.sum(Xp * Xp, axis=1)[None, :]
            - 2.0 * (X @ Xp.T)
        )
        dist = np.sqrt(np.maximum(d2, 0.0)).min(axis=1)
        return s * np.clip(dist / self.radius, 0.0, 1.0)


_ACQS = {"ei": ExpectedImprovement, "lcb": LowerConfidenceBound}


def get_acquisition(name: str, **kwargs) -> Acquisition:
    """Look up an acquisition by name (``ei``, ``lcb``)."""
    try:
        return _ACQS[name](**kwargs)
    except KeyError:
        raise ValueError(f"unknown acquisition {name!r}; choose from {sorted(_ACQS)}")
