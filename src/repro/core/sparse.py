"""Large-n surrogates: sparse inducing-point GPs and partitioned local GPs.

Every surrogate in the reproduction was a dense Cholesky — O(n^3) fit,
O(n^2) memory — which is fine at the paper's n≈200 histories but
collapses at the 10^4–10^6 record histories a real crowd database
accumulates.  This module adds two complementary large-n surrogates
behind the :class:`~repro.core.gp.GaussianProcess` interface (``fit`` /
``update`` / ``predict`` / ``extends_training_data`` / ``to_dict``),
so the incremental and freeze machinery of the tuner, the TLA pool and
the model registry keep working unchanged:

* :class:`SparseGP` — an inducing-point SGPR/Nyström GP.  ``m``
  inducing points are chosen deterministically by greedy max-min
  (k-center) selection on the unit cube, hyperparameters come from an
  exact-GP MLE on the k-center subset, and the posterior is the standard
  projected-process one: O(nm^2) fit, O(m^2) per prediction point, with
  a rank-1 ``update()`` that folds new rows into the cached
  ``U U^T``-style factors in O(m^2) per point.
* :class:`PartitionedGP` — a partitioned local-GP ensemble.  The
  history is split by recursive k-d median cuts until every leaf holds
  at most ``leaf_size`` points, one *exact* GP is fitted per leaf
  (optionally in parallel threads — per-leaf seeds are drawn up front,
  so parallel and serial fits are identical), and predictions merge the
  ``top_k`` nearest leaves with the paper's Eq. (1)-(2) weighted
  combine from :mod:`repro.core.combine` (inverse-squared-distance
  weights, one weight per leaf per query point).  Total fit cost is
  O(n * leaf_size^2) — linear in n at fixed leaf size.

When to use which: ``SparseGP`` wins when one global set of
hyperparameters describes the whole history (smooth objectives, m in
the low hundreds captures the structure) and gives the cheapest
predictions; ``PartitionedGP`` wins when the response surface is
non-stationary (different length scales in different regions — common
across a crowd's heterogeneous configurations) because every leaf gets
its own MLE, at the price of a slightly costlier merge at predict time.

Task-level grouping happens *above* this module: the registry builds
one surrogate per ``(problem, task)`` and the tuners model one task at
a time, so both classes partition/summarize within a single task's
history.

The ``surrogate="auto"`` policy (:func:`resolve_surrogate_kind`) keeps
the dense GP — bit-identical to the historical behavior — up to
``n_dense_max`` observations and switches to the sparse surrogate past
it; :func:`make_surrogate` and :func:`surrogate_from_dict` are the
construction/round-trip entry points the tuners and the registry share.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np
from scipy.linalg import get_lapack_funcs

from . import perf
from .combine import combine_stacked, normalized_weight_matrix
from .gp import GaussianProcess, GPFitError, cholesky_with_jitter
from .kernels import Kernel, kernel_from_name

__all__ = [
    "SparseGP",
    "PartitionedGP",
    "FrozenSparseGP",
    "FrozenPartitionedGP",
    "select_inducing",
    "resolve_surrogate_kind",
    "surrogate_kind_of",
    "make_surrogate",
    "surrogate_from_dict",
]

(_trtrs,) = get_lapack_funcs(("trtrs",), (np.empty(0, dtype=np.float64),))

#: surrogate policies accepted by the tuners and the registry
SURROGATE_KINDS = ("auto", "dense", "sparse", "partitioned")

#: noise-variance floor inside the SGPR factors (a zero noise would make
#: the information matrix B = I + U U^T / sigma^2 singular in float64)
_NOISE_FLOOR = 1e-8


def select_inducing(X: np.ndarray, m: int) -> np.ndarray:
    """Indices of ``m`` greedy max-min (k-center) points of ``X``.

    Deterministic: the first pick is the point nearest the data mean,
    every later pick maximizes the minimum squared distance to the
    points already chosen (ties broken by lowest index via argmax).
    The greedy order is *nested* — the first k of an m-selection are
    exactly the k-selection — which lets one call serve both the
    inducing set and the (possibly larger) hyperparameter subset.
    O(nm) with a running min-distance array.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    n = X.shape[0]
    m = int(min(max(m, 1), n))
    center = X.mean(axis=0)
    first = int(np.argmin(np.sum((X - center) ** 2, axis=1)))
    chosen = np.empty(m, dtype=np.intp)
    chosen[0] = first
    d2 = np.sum((X - X[first]) ** 2, axis=1)
    for j in range(1, m):
        nxt = int(np.argmax(d2))
        chosen[j] = nxt
        np.minimum(d2, np.sum((X - X[nxt]) ** 2, axis=1), out=d2)
    return chosen


def resolve_surrogate_kind(policy: str, n: int, n_dense_max: int) -> str:
    """Map a surrogate policy to the concrete kind for ``n`` observations.

    ``"dense"`` / ``"sparse"`` / ``"partitioned"`` are explicit;
    ``"auto"`` keeps the exact dense GP (bit-identical to the historical
    path) up to ``n_dense_max`` points and switches to the sparse
    inducing-point GP past it.
    """
    if policy not in SURROGATE_KINDS:
        raise ValueError(f"unknown surrogate policy {policy!r}; choose from {SURROGATE_KINDS}")
    if policy != "auto":
        return policy
    return "dense" if n <= int(n_dense_max) else "sparse"


def surrogate_kind_of(model: object) -> str:
    """The policy kind a fitted/unfitted surrogate instance belongs to."""
    if isinstance(model, SparseGP):
        return "sparse"
    if isinstance(model, PartitionedGP):
        return "partitioned"
    return "dense"


def make_surrogate(
    kind: str,
    kernel: str = "rbf",
    *,
    seed: int | None = None,
    max_fun: int = 80,
    n_restarts: int = 1,
    n_inducing: int = 100,
    leaf_size: int = 200,
    top_k: int = 4,
    n_jobs: int = 1,
):
    """Construct an unfitted surrogate of the given concrete ``kind``.

    The shared factory behind the tuners' ``surrogate=`` policy and the
    registry's large-history builds, so every layer creates the sparse
    classes with the same knobs.  ``kind`` must already be concrete
    (resolve ``"auto"`` with :func:`resolve_surrogate_kind` first).
    """
    if kind == "dense":
        raise ValueError("make_surrogate builds the sparse kinds; construct "
                         "GaussianProcess directly for the dense path")
    if kind == "sparse":
        return SparseGP(
            kernel,
            n_inducing=n_inducing,
            max_fun=max_fun,
            n_restarts=n_restarts,
            seed=seed,
        )
    if kind == "partitioned":
        return PartitionedGP(
            kernel,
            leaf_size=leaf_size,
            top_k=top_k,
            max_fun=max_fun,
            n_restarts=n_restarts,
            n_jobs=n_jobs,
            seed=seed,
        )
    raise ValueError(f"unknown surrogate kind {kind!r}")


def surrogate_from_dict(doc: dict):
    """Reconstruct any serialized surrogate from its portable snapshot.

    Dispatches on the snapshot's ``"type"`` tag; snapshots without one
    are dense :class:`GaussianProcess` documents (the historical format,
    which never carried a tag).
    """
    kind = doc.get("type", "dense")
    if kind == "sparse":
        return SparseGP.from_dict(doc)
    if kind == "partitioned":
        return PartitionedGP.from_dict(doc)
    return GaussianProcess.from_dict(doc)


# -- SGPR / Nyström inducing-point GP ------------------------------------------


@dataclass
class _SparseState:
    """Immutable-by-convention cached SGPR factorization.

    ``update()`` replaces the state object instead of mutating arrays in
    place, so frozen views and the batch-proposal fantasy save/restore
    (``gp._state`` snapshotting in :func:`repro.core.optimizer.propose_batch`)
    stay valid.
    """

    X: np.ndarray  # (n, d) training inputs, insertion order
    y_raw: np.ndarray  # (n,) raw targets
    Z: np.ndarray  # (m, d) inducing points
    Lm: np.ndarray  # chol(K_mm + jitter_m I), lower, Fortran order
    jitter_m: float
    UUt: np.ndarray  # U U^T where U = Lm^{-1} K_mn
    U1: np.ndarray  # U @ 1_n
    Uy: np.ndarray  # U @ y_raw
    y_mean: float
    y_std: float
    sigma2: float  # effective noise variance (floored)
    LB: np.ndarray  # chol(I + UUt / sigma2), lower, Fortran order
    jitter_b: float
    c: np.ndarray  # LB^{-1} (U ys) / sigma2


def _sgpr_predict(
    kernel: Kernel, st: _SparseState, X: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The SGPR posterior at ``X`` — shared by live and frozen predictors."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    Ksm = kernel(X, st.Z)  # (n*, m)
    t1, _ = _trtrs(st.Lm, Ksm.T, lower=1, trans=0)  # Lm^{-1} K_ms
    t2, _ = _trtrs(st.LB, t1, lower=1, trans=0)  # LB^{-1} Lm^{-1} K_ms
    mean = t2.T @ st.c * st.y_std + st.y_mean
    var = kernel.diag(X) + st.sigma2 - np.sum(t1 * t1, axis=0) + np.sum(t2 * t2, axis=0)
    std = np.sqrt(np.maximum(var, 1e-12)) * st.y_std
    return mean, std


class FrozenSparseGP:
    """Frozen view of a fitted :class:`SparseGP` (kernel clone + state).

    The state object is never mutated after creation (``update()``
    replaces it), so the view replays the live model's prediction at
    freeze time bit for bit, forever.
    """

    __slots__ = ("kernel", "_st")

    def __init__(self, kernel: Kernel, st: _SparseState) -> None:
        self.kernel = kernel
        self._st = st

    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return _sgpr_predict(self.kernel, self._st, X)


class SparseGP:
    """Inducing-point SGPR/Nyström GP on unit-cube inputs.

    Mirrors the :class:`GaussianProcess` interface so the tuners, the
    TLA target models and the registry can hold either interchangeably.

    Parameters
    ----------
    kernel:
        Kernel instance, kernel name, or ``None`` (ARD RBF at fit time).
    n_inducing:
        Number of inducing points ``m`` (capped at n).  Fit is O(nm^2),
        predictions O(m^2) per point.
    inducing:
        Optional explicit inducing-point array overriding the k-center
        selection (tests pin update-vs-refit equivalence with it).
    noise_variance / optimize / n_restarts / max_fun / seed:
        As in :class:`GaussianProcess`.  Hyperparameters are optimized
        by an *exact* GP MLE on the deterministic k-center subset of
        ``max(n_inducing, n_hyper)`` points — O(subset^3) independent of
        n — then frozen into the O(nm^2) SGPR factorization.
    n_hyper:
        Size of the MLE subset (default: the inducing set itself).
    """

    def __init__(
        self,
        kernel: Kernel | str | None = None,
        *,
        n_inducing: int = 100,
        inducing: np.ndarray | None = None,
        noise_variance: float = 1e-4,
        optimize: bool = True,
        n_restarts: int = 1,
        max_fun: int = 80,
        seed: int | None = None,
        n_hyper: int | None = None,
    ) -> None:
        if n_inducing < 1:
            raise ValueError("n_inducing must be >= 1")
        self.kernel = kernel if isinstance(kernel, Kernel) else None
        self._kernel_name = kernel if isinstance(kernel, str) else None
        self.n_inducing = int(n_inducing)
        self.inducing = None if inducing is None else np.atleast_2d(
            np.asarray(inducing, dtype=float)
        )
        self.noise_variance = float(noise_variance)
        self.optimize = optimize
        self.n_restarts = int(n_restarts)
        self.max_fun = int(max_fun)
        self.n_hyper = None if n_hyper is None else int(n_hyper)
        self.seed = seed
        self._state: _SparseState | None = None
        self.version = 0
        self._frozen: tuple[int, FrozenSparseGP] | None = None

    # -- public API ---------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return self._state is not None

    @property
    def n_train(self) -> int:
        return 0 if self._state is None else self._state.X.shape[0]

    @property
    def inducing_points(self) -> np.ndarray:
        if self._state is None:
            raise RuntimeError("inducing_points before fit()")
        return self._state.Z

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SparseGP":
        """Fit to data: select inducing points, MLE on the subset, factorize."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X rows ({X.shape[0]}) != y length ({y.shape[0]})")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a SparseGP to zero observations")
        n, d = X.shape
        if self.kernel is None:
            name = self._kernel_name or "rbf"
            self.kernel = kernel_from_name(name, d)
        elif self.kernel.dim != d:
            raise ValueError(f"kernel dimension {self.kernel.dim} != data dimension {d}")

        m = min(self.n_inducing, n)
        n_hyper = min(n, max(m, self.n_hyper or m, 2))
        if self.inducing is not None:
            Z = self.inducing
            sub = np.unique(np.linspace(0, n - 1, n_hyper).astype(np.intp))
        else:
            with perf.timer("sparse_select_inducing"):
                idx = select_inducing(X, max(m, n_hyper))
            Z = X[idx[:m]].copy()
            sub = idx[:n_hyper]

        if self.optimize and n >= 2:
            # exact-GP MLE on the k-center subset; the helper shares this
            # model's kernel object, so the optimum lands in self.kernel
            helper = GaussianProcess(
                self.kernel,
                noise_variance=self.noise_variance,
                n_restarts=self.n_restarts,
                max_fun=self.max_fun,
                seed=self.seed,
            )
            helper.fit(X[sub], y[sub])
            self.noise_variance = helper.noise_variance

        self._state = self._build_state(X, y, Z)
        self.version += 1
        self._frozen = None
        perf.incr("sparse_fits")
        return self

    def _build_state(
        self,
        X: np.ndarray,
        y_raw: np.ndarray,
        Z: np.ndarray,
        jitter_m: float | None = None,
    ) -> _SparseState:
        """The O(nm^2) SGPR factorization at the current hyperparameters.

        With ``jitter_m`` given, the inducing-block Cholesky replays that
        exact rung (the deserialization path) instead of walking the
        ladder again.
        """
        Kmm = self.kernel(Z)
        if jitter_m is None:
            Lm, jitter_m = cholesky_with_jitter(Kmm)
        else:
            try:
                from scipy import linalg as sla

                M = Kmm if jitter_m == 0.0 else Kmm + jitter_m * np.eye(Z.shape[0])
                Lm = sla.cholesky(M, lower=True)
            except Exception:
                # snapshot from another BLAS/platform: fall back to the ladder
                Lm, jitter_m = cholesky_with_jitter(Kmm)
        Lm = np.asfortranarray(Lm)
        Kmn = self.kernel(Z, X)
        U, _ = _trtrs(Lm, Kmn, lower=1, trans=0)
        UUt = U @ U.T
        U1 = U.sum(axis=1)
        Uy = U @ y_raw
        return self._refresh(X, y_raw, Z, Lm, float(jitter_m), UUt, U1, Uy)

    def _refresh(
        self,
        X: np.ndarray,
        y_raw: np.ndarray,
        Z: np.ndarray,
        Lm: np.ndarray,
        jitter_m: float,
        UUt: np.ndarray,
        U1: np.ndarray,
        Uy: np.ndarray,
        jitter_b: float | None = None,
    ) -> _SparseState:
        """Rebuild the y-dependent tail of the state (standardization,
        information-matrix Cholesky, projected coefficients) — O(m^3)."""
        y_mean = float(np.mean(y_raw))
        y_std = float(np.std(y_raw))
        if not np.isfinite(y_std) or y_std < 1e-12:
            y_std = 1.0
        sigma2 = max(float(self.noise_variance), _NOISE_FLOOR)
        B = np.eye(Z.shape[0]) + UUt / sigma2
        if jitter_b is None:
            LB, jitter_b = cholesky_with_jitter(B)
        else:
            try:
                from scipy import linalg as sla

                M = B if jitter_b == 0.0 else B + jitter_b * np.eye(Z.shape[0])
                LB = sla.cholesky(M, lower=True)
            except Exception:
                LB, jitter_b = cholesky_with_jitter(B)
        LB = np.asfortranarray(LB)
        Uys = (Uy - y_mean * U1) / y_std
        c0, _ = _trtrs(LB, Uys, lower=1, trans=0)
        return _SparseState(
            X=X,
            y_raw=y_raw,
            Z=Z,
            Lm=Lm,
            jitter_m=jitter_m,
            UUt=UUt,
            U1=U1,
            Uy=Uy,
            y_mean=y_mean,
            y_std=y_std,
            sigma2=sigma2,
            LB=LB,
            jitter_b=float(jitter_b),
            c=c0 / sigma2,
        )

    def update(self, x: np.ndarray, y: np.ndarray) -> "SparseGP":
        """Append observation(s) without re-selecting inducing points.

        Folds the new rows into the cached ``U U^T`` / ``U 1`` / ``U y``
        accumulators — O(m^2) per point plus one O(m^3) refresh of the
        m-by-m information Cholesky — so crowd-sized histories absorb a
        stream of new records without ever touching the O(nm^2) fit
        again.  Hyperparameters and inducing points stay frozen, exactly
        like the dense ``update()`` freezes theta.
        """
        if self._state is None:
            raise RuntimeError("update() before fit()")
        st = self._state
        X_new = np.atleast_2d(np.asarray(x, dtype=float))
        y_new = np.asarray(y, dtype=float).ravel()
        if X_new.shape[0] != y_new.shape[0]:
            raise ValueError(f"x rows ({X_new.shape[0]}) != y length ({y_new.shape[0]})")
        if X_new.shape[0] == 0:
            return self
        if X_new.shape[1] != st.X.shape[1]:
            raise ValueError(
                f"x dimension {X_new.shape[1]} != training dimension {st.X.shape[1]}"
            )
        k_new = self.kernel(st.Z, X_new)  # (m, k)
        u_new, _ = _trtrs(st.Lm, k_new, lower=1, trans=0)
        self._state = self._refresh(
            np.vstack([st.X, X_new]),
            np.concatenate([st.y_raw, y_new]),
            st.Z,
            st.Lm,
            st.jitter_m,
            st.UUt + u_new @ u_new.T,
            st.U1 + u_new.sum(axis=1),
            st.Uy + u_new @ y_new,
        )
        self.version += 1
        self._frozen = None
        perf.incr("sparse_updates", X_new.shape[0])
        return self

    def extends_training_data(self, X: np.ndarray, y: np.ndarray) -> int | None:
        """Number of rows ``(X, y)`` appends to the fitted data, else ``None``
        (same contract as :meth:`GaussianProcess.extends_training_data`)."""
        if self._state is None:
            return None
        st = self._state
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        n = st.X.shape[0]
        if X.shape[0] < n or X.shape[1] != st.X.shape[1]:
            return None
        if not np.array_equal(X[:n], st.X) or not np.array_equal(y[:n], st.y_raw):
            return None
        return X.shape[0] - n

    def predict(self, X: np.ndarray, return_std: bool = True):
        """SGPR posterior mean (and std) at ``X``, original target scale."""
        if self._state is None:
            raise RuntimeError("predict() before fit()")
        mean, std = _sgpr_predict(self.kernel, self._state, X)
        return (mean, std) if return_std else mean

    def predict_mean(self, X: np.ndarray) -> np.ndarray:
        return self.predict(X, return_std=False)

    def frozen_view(self) -> FrozenSparseGP | None:
        """A frozen fast predictor of the current fit (version-cached)."""
        if self._state is None:
            return None
        if self._frozen is not None and self._frozen[0] == self.version:
            return self._frozen[1]
        frozen = FrozenSparseGP(self.kernel.clone(), self._state)
        self._frozen = (self.version, frozen)
        return frozen

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """Portable snapshot, exact like the dense GP's.

        Carries the incremental accumulators (``UUt`` / ``U1`` / ``Uy``)
        rather than recomputing them from scratch on load: an updated
        model's factors were built by rank-1 accumulation, which a
        one-shot ``U @ U.T`` would reproduce only to round-off — and the
        registry's served-equals-local guarantee is bitwise.
        """
        if self._state is None:
            raise RuntimeError("cannot serialize an unfitted SparseGP")
        st = self._state
        return {
            "type": "sparse",
            "kernel": type(self.kernel).__name__.lower(),
            "variance": float(self.kernel.variance),
            "lengthscales": self.kernel.lengthscales.tolist(),
            "noise_variance": float(self.noise_variance),
            "n_inducing": int(self.n_inducing),
            "Z": st.Z.tolist(),
            "jitter_m": float(st.jitter_m),
            "jitter_b": float(st.jitter_b),
            "UUt": st.UUt.tolist(),
            "U1": st.U1.tolist(),
            "Uy": st.Uy.tolist(),
            "X": st.X.tolist(),
            "y_raw": st.y_raw.tolist(),
        }

    @staticmethod
    def from_dict(doc: dict) -> "SparseGP":
        Z = np.asarray(doc["Z"], dtype=float)
        X = np.asarray(doc["X"], dtype=float)
        y_raw = np.asarray(doc["y_raw"], dtype=float)
        kernel = kernel_from_name(
            doc["kernel"],
            Z.shape[1],
            variance=float(doc["variance"]),
            lengthscales=doc["lengthscales"],
        )
        gp = SparseGP(
            kernel,
            n_inducing=int(doc.get("n_inducing", Z.shape[0])),
            noise_variance=float(doc["noise_variance"]),
            optimize=False,
        )
        Kmm = kernel(Z)
        jitter_m = float(doc.get("jitter_m", 0.0))
        try:
            from scipy import linalg as sla

            M = Kmm if jitter_m == 0.0 else Kmm + jitter_m * np.eye(Z.shape[0])
            Lm = sla.cholesky(M, lower=True)
        except Exception:
            Lm, jitter_m = cholesky_with_jitter(Kmm)
        gp._state = gp._refresh(
            X,
            y_raw,
            Z,
            np.asfortranarray(Lm),
            jitter_m,
            np.asarray(doc["UUt"], dtype=float),
            np.asarray(doc["U1"], dtype=float),
            np.asarray(doc["Uy"], dtype=float),
            jitter_b=float(doc.get("jitter_b", 0.0)) if "jitter_b" in doc else None,
        )
        gp.version += 1
        return gp


# -- partitioned local-GP ensemble ---------------------------------------------


class _Leaf:
    """One cluster of the partition: its data, exact GP, and centroid."""

    __slots__ = ("gp", "X", "y", "centroid")

    def __init__(self, gp: GaussianProcess, X: np.ndarray, y: np.ndarray) -> None:
        self.gp = gp
        self.X = X
        self.y = y
        self.centroid = X.mean(axis=0)


def _median_split_indices(
    X: np.ndarray, idx: np.ndarray, leaf_size: int
) -> list[np.ndarray]:
    """Recursive k-d median split of ``idx`` into groups of <= leaf_size.

    Each cut sorts the group along its widest-spread dimension (stable)
    and halves it at the midpoint, so groups are balanced, never empty,
    and the split sequence is deterministic.
    """
    out: list[np.ndarray] = []
    stack = [idx]
    while stack:
        g = stack.pop()
        if g.shape[0] <= leaf_size:
            out.append(g)
            continue
        sub = X[g]
        dim = int(np.argmax(sub.max(axis=0) - sub.min(axis=0)))
        order = np.argsort(sub[:, dim], kind="stable")
        half = g.shape[0] // 2
        stack.append(g[order[half:]])
        stack.append(g[order[:half]])
    return out


def _partitioned_predict(
    predictors: list,
    centroids: np.ndarray,
    top_k: int,
    X: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. (1)-(2) merge of the ``top_k`` nearest leaves per query point.

    Weights are inverse squared centroid distances, column-normalized by
    :func:`~repro.core.combine.normalized_weight_matrix`; the reduction
    is :func:`~repro.core.combine.combine_stacked` — the exact machinery
    the TLA weighted-sum strategies run, one weight per model per point.
    Shared by live and frozen predictors, so freezing changes nothing.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    n = X.shape[0]
    n_leaves = centroids.shape[0]
    d2 = (
        np.sum(X * X, axis=1)[:, None]
        + np.sum(centroids * centroids, axis=1)[None, :]
        - 2.0 * (X @ centroids.T)
    )
    d2 = np.maximum(d2, 0.0)
    k = min(max(int(top_k), 1), n_leaves)
    if k == n_leaves:
        sel = np.broadcast_to(np.arange(n_leaves), (n, n_leaves))
    else:
        sel = np.argpartition(d2, k - 1, axis=1)[:, :k]
    rows = np.arange(n)[:, None]
    W = normalized_weight_matrix(1.0 / (d2[rows, sel] + 1e-9).T)  # (k, n)
    means = np.empty((k, n))
    stds = np.empty((k, n))
    for leaf_id in np.unique(sel):
        pos_i, pos_j = np.nonzero(sel == leaf_id)
        mu, sd = predictors[leaf_id](X[pos_i])
        means[pos_j, pos_i] = mu
        stds[pos_j, pos_i] = sd
    mean, std = combine_stacked(list(means), list(stds), W)
    perf.incr("partition_merges")
    return mean, std


class FrozenPartitionedGP:
    """Frozen view of a fitted :class:`PartitionedGP`.

    Captures the per-leaf frozen predictors and the centroid array at
    freeze time; replays :meth:`PartitionedGP.predict` through the same
    merge function, so the view is bit-identical to the live model.
    """

    __slots__ = ("_predictors", "_centroids", "_top_k")

    def __init__(self, predictors: list, centroids: np.ndarray, top_k: int) -> None:
        self._predictors = predictors
        self._centroids = centroids
        self._top_k = top_k

    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return _partitioned_predict(self._predictors, self._centroids, self._top_k, X)


class PartitionedGP:
    """Partitioned local-GP surrogate: exact GPs on k-d leaves, merged
    at predict with per-point Eq. (1)-(2) weights.

    Parameters
    ----------
    kernel:
        Kernel *name* (every leaf gets its own instance and its own MLE
        — the non-stationarity win over one global set of
        hyperparameters).
    leaf_size:
        Maximum points per leaf; fit cost is O(n * leaf_size^2).  A leaf
        grown past ``2 * leaf_size`` by :meth:`update` is re-split.
    top_k:
        Leaves merged per query point.
    n_jobs:
        Thread-parallel leaf fitting when > 1 (per-leaf seeds are drawn
        up front, so results are scheduling-independent).
    """

    def __init__(
        self,
        kernel: str | None = "rbf",
        *,
        leaf_size: int = 200,
        top_k: int = 4,
        noise_variance: float = 1e-4,
        optimize: bool = True,
        n_restarts: int = 1,
        max_fun: int = 80,
        n_jobs: int = 1,
        seed: int | None = None,
    ) -> None:
        if leaf_size < 2:
            raise ValueError("leaf_size must be >= 2")
        if isinstance(kernel, Kernel):
            raise TypeError("PartitionedGP takes a kernel name; every leaf "
                            "instantiates (and optimizes) its own kernel")
        self.kernel_name = kernel or "rbf"
        self.leaf_size = int(leaf_size)
        self.top_k = int(top_k)
        self.noise_variance = float(noise_variance)
        self.optimize = optimize
        self.n_restarts = int(n_restarts)
        self.max_fun = int(max_fun)
        self.n_jobs = int(n_jobs)
        self.seed = seed
        self._leaves: list[_Leaf] | None = None
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._seed_rng = np.random.default_rng(seed)
        self.version = 0
        self._frozen: tuple[int, FrozenPartitionedGP] | None = None

    # -- public API ---------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return self._leaves is not None

    @property
    def n_train(self) -> int:
        return 0 if self._X is None else self._X.shape[0]

    @property
    def n_leaves(self) -> int:
        return 0 if self._leaves is None else len(self._leaves)

    def _fit_leaf(self, X: np.ndarray, y: np.ndarray, seed: int) -> GaussianProcess:
        gp = GaussianProcess(
            kernel_from_name(self.kernel_name, X.shape[1]),
            noise_variance=self.noise_variance,
            optimize=self.optimize,
            n_restarts=self.n_restarts,
            max_fun=self.max_fun,
            seed=seed,
        )
        gp.fit(X, y)
        perf.incr("partition_leaf_fits")
        return gp

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PartitionedGP":
        """Partition the history and fit one exact GP per leaf."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X rows ({X.shape[0]}) != y length ({y.shape[0]})")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a PartitionedGP to zero observations")
        groups = _median_split_indices(X, np.arange(X.shape[0], dtype=np.intp),
                                       self.leaf_size)
        # seeds drawn up front in group order: thread scheduling cannot
        # change which seed a leaf gets, so n_jobs>1 is bit-identical
        seeds = [int(self._seed_rng.integers(0, 2**31 - 1)) for _ in groups]
        if self.n_jobs > 1 and len(groups) > 1:
            with ThreadPoolExecutor(max_workers=self.n_jobs) as pool:
                gps = list(
                    pool.map(
                        lambda args: self._fit_leaf(*args),
                        [(X[g], y[g], s) for g, s in zip(groups, seeds)],
                    )
                )
        else:
            gps = [self._fit_leaf(X[g], y[g], s) for g, s in zip(groups, seeds)]
        self._leaves = [
            _Leaf(gp, X[g].copy(), y[g].copy()) for gp, g in zip(gps, groups)
        ]
        self._X = X.copy()
        self._y = y.copy()
        self.version += 1
        self._frozen = None
        return self

    def update(self, x: np.ndarray, y: np.ndarray) -> "PartitionedGP":
        """Route new observation(s) to their nearest leaves incrementally.

        Each row lands in the leaf with the nearest centroid and is
        absorbed through the leaf GP's O(leaf^2) rank-1 ``update`` (a
        degenerate append falls back to a non-optimizing leaf refit).  A
        leaf grown past ``2 * leaf_size`` is re-split and its halves
        refit with fresh MLEs — the only O(leaf^3) work on the update
        path, amortized over ``leaf_size`` appends.
        """
        if self._leaves is None:
            raise RuntimeError("update() before fit()")
        X_new = np.atleast_2d(np.asarray(x, dtype=float))
        y_new = np.asarray(y, dtype=float).ravel()
        if X_new.shape[0] != y_new.shape[0]:
            raise ValueError(f"x rows ({X_new.shape[0]}) != y length ({y_new.shape[0]})")
        if X_new.shape[0] == 0:
            return self
        if X_new.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"x dimension {X_new.shape[1]} != training dimension {self._X.shape[1]}"
            )
        centroids = np.array([leaf.centroid for leaf in self._leaves])
        d2 = (
            np.sum(X_new * X_new, axis=1)[:, None]
            + np.sum(centroids * centroids, axis=1)[None, :]
            - 2.0 * (X_new @ centroids.T)
        )
        nearest = np.argmin(d2, axis=1)
        touched: dict[int, list[int]] = {}
        for row, leaf_id in enumerate(nearest):
            touched.setdefault(int(leaf_id), []).append(row)
        split_queue: list[_Leaf] = []
        for leaf_id in sorted(touched):
            rows = touched[leaf_id]
            leaf = self._leaves[leaf_id]
            leaf.X = np.vstack([leaf.X, X_new[rows]])
            leaf.y = np.concatenate([leaf.y, y_new[rows]])
            leaf.centroid = leaf.X.mean(axis=0)
            try:
                leaf.gp.update(X_new[rows], y_new[rows])
            except GPFitError:
                saved = leaf.gp.optimize
                leaf.gp.optimize = False
                try:
                    leaf.gp.fit(leaf.X, leaf.y)
                finally:
                    leaf.gp.optimize = saved
            if leaf.X.shape[0] > 2 * self.leaf_size:
                split_queue.append(leaf)
        for leaf in split_queue:
            self._split_leaf(leaf)
        self._X = np.vstack([self._X, X_new])
        self._y = np.concatenate([self._y, y_new])
        self.version += 1
        self._frozen = None
        perf.incr("partition_updates", X_new.shape[0])
        return self

    def _split_leaf(self, leaf: _Leaf) -> None:
        """Replace one oversized leaf with its median-split children."""
        groups = _median_split_indices(
            leaf.X, np.arange(leaf.X.shape[0], dtype=np.intp), self.leaf_size
        )
        pos = self._leaves.index(leaf)
        children = []
        for g in groups:
            seed = int(self._seed_rng.integers(0, 2**31 - 1))
            gp = self._fit_leaf(leaf.X[g], leaf.y[g], seed)
            children.append(_Leaf(gp, leaf.X[g].copy(), leaf.y[g].copy()))
        self._leaves[pos : pos + 1] = children

    def extends_training_data(self, X: np.ndarray, y: np.ndarray) -> int | None:
        """Same prefix contract as :meth:`GaussianProcess.extends_training_data`,
        against the insertion-order history (not the per-leaf order)."""
        if self._X is None:
            return None
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        n = self._X.shape[0]
        if X.shape[0] < n or X.shape[1] != self._X.shape[1]:
            return None
        if not np.array_equal(X[:n], self._X) or not np.array_equal(y[:n], self._y):
            return None
        return X.shape[0] - n

    def _predictors(self) -> list:
        from .frozen import frozen_view

        out = []
        for leaf in self._leaves:
            fv = frozen_view(leaf.gp)
            out.append(fv.predict if fv is not None else leaf.gp.predict)
        return out

    def predict(self, X: np.ndarray, return_std: bool = True):
        """Merged posterior over the ``top_k`` nearest leaves per point."""
        if self._leaves is None:
            raise RuntimeError("predict() before fit()")
        centroids = np.array([leaf.centroid for leaf in self._leaves])
        mean, std = _partitioned_predict(self._predictors(), centroids, self.top_k, X)
        return (mean, std) if return_std else mean

    def predict_mean(self, X: np.ndarray) -> np.ndarray:
        return self.predict(X, return_std=False)

    def frozen_view(self) -> FrozenPartitionedGP | None:
        """A frozen fast predictor of the current fit (version-cached)."""
        if self._leaves is None:
            return None
        if self._frozen is not None and self._frozen[0] == self.version:
            return self._frozen[1]
        centroids = np.array([leaf.centroid for leaf in self._leaves])
        frozen = FrozenPartitionedGP(self._predictors(), centroids, self.top_k)
        self._frozen = (self.version, frozen)
        return frozen

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        """Portable snapshot: per-leaf dense-GP snapshots + global history.

        Each leaf rides on :meth:`GaussianProcess.to_dict`'s exact
        round-trip (raw parameters, pinned jitter, raw targets), so a
        reloaded partition serves bit-identical predictions fit-free.
        """
        if self._leaves is None:
            raise RuntimeError("cannot serialize an unfitted PartitionedGP")
        return {
            "type": "partitioned",
            "kernel": self.kernel_name,
            "leaf_size": int(self.leaf_size),
            "top_k": int(self.top_k),
            "noise_variance": float(self.noise_variance),
            "X": self._X.tolist(),
            "y_raw": self._y.tolist(),
            "leaves": [leaf.gp.to_dict() for leaf in self._leaves],
        }

    @staticmethod
    def from_dict(doc: dict) -> "PartitionedGP":
        model = PartitionedGP(
            doc.get("kernel", "rbf"),
            leaf_size=int(doc.get("leaf_size", 200)),
            top_k=int(doc.get("top_k", 4)),
            noise_variance=float(doc.get("noise_variance", 1e-4)),
            optimize=False,
        )
        leaves = []
        for leaf_doc in doc["leaves"]:
            gp = GaussianProcess.from_dict(leaf_doc)
            st = gp.fit_state
            leaves.append(_Leaf(gp, st.X, st.y_raw))
        model._leaves = leaves
        model._X = np.asarray(doc["X"], dtype=float)
        model._y = np.asarray(doc["y_raw"], dtype=float)
        model.version += 1
        return model
