"""Initial-design samplers (system S6).

Bayesian optimization starts from an initial design before the surrogate
takes over; the paper's source datasets are "randomly chosen parameter
configurations" (Sec. VI-B).  Three designs are provided:

* :class:`RandomSampler` — i.i.d. uniform (the paper's choice),
* :class:`LatinHypercubeSampler` — stratified per-dimension,
* :class:`SobolSampler` — quasi-random via :mod:`repro.sensitivity.sobol_sequence`.

All samplers produce *unique* configurations: duplicate configurations
(common when integer/categorical cells collapse many unit-cube points)
are resampled, because re-evaluating a deterministic objective at a
duplicated configuration wastes tuning budget.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from ..sensitivity.sobol_sequence import MAX_DIM, SobolSequence
from .space import Space

__all__ = [
    "Sampler",
    "RandomSampler",
    "LatinHypercubeSampler",
    "SobolSampler",
    "get_sampler",
    "unique_configs",
]


def _config_key(config: dict[str, Any]) -> tuple:
    return tuple(sorted((k, repr(v)) for k, v in config.items()))


def unique_configs(
    configs: list[dict[str, Any]], exclude: list[dict[str, Any]] | None = None
) -> list[dict[str, Any]]:
    """Drop duplicates (and anything in ``exclude``), preserving order."""
    seen = {_config_key(c) for c in exclude} if exclude else set()
    out = []
    for c in configs:
        k = _config_key(c)
        if k not in seen:
            seen.add(k)
            out.append(c)
    return out


class Sampler(ABC):
    """Generates batches of configurations from a :class:`Space`."""

    name: str = "abstract"

    @abstractmethod
    def raw(self, n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` unit-cube points of dimension ``dim``."""

    def sample(
        self,
        space: Space,
        n: int,
        rng: np.random.Generator,
        *,
        exclude: list[dict[str, Any]] | None = None,
        max_attempts: int = 20,
    ) -> list[dict[str, Any]]:
        """``n`` unique configurations, avoiding ``exclude``.

        For heavily discretized spaces the number of distinct
        configurations may be smaller than ``n``; in that case as many
        unique configurations as exist (discovered within
        ``max_attempts`` rounds) are returned.
        """
        if n <= 0:
            return []
        out: list[dict[str, Any]] = []
        for _ in range(max_attempts):
            need = n - len(out)
            if need <= 0:
                break
            U = self.raw(max(need * 2, 8), space.dim, rng)
            fresh = unique_configs(
                space.from_unit_array(U), exclude=(exclude or []) + out
            )
            out.extend(fresh[:need])
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class RandomSampler(Sampler):
    """I.i.d. uniform sampling — the paper's source-data generator."""

    name = "random"

    def raw(self, n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
        return rng.random((n, dim))


class LatinHypercubeSampler(Sampler):
    """Latin hypercube design: one point per row/column stratum."""

    name = "lhs"

    def raw(self, n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
        U = np.empty((n, dim))
        for j in range(dim):
            perm = rng.permutation(n)
            U[:, j] = (perm + rng.random(n)) / n
        return U


class SobolSampler(Sampler):
    """Quasi-random design from the Sobol' sequence (digitally shifted)."""

    name = "sobol"

    def raw(self, n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
        if dim > MAX_DIM:
            raise ValueError(f"Sobol sampler supports at most {MAX_DIM} dims")
        seed = int(rng.integers(0, 2**31 - 1))
        seq = SobolSequence(dim, skip=1, scramble=True, seed=seed)
        return seq.generate(n)


_SAMPLERS: dict[str, type[Sampler]] = {
    cls.name: cls for cls in (RandomSampler, LatinHypercubeSampler, SobolSampler)
}


def get_sampler(name: str) -> Sampler:
    """Look up a sampler by name (``random``, ``lhs``, ``sobol``)."""
    try:
        return _SAMPLERS[name]()
    except KeyError:
        raise ValueError(f"unknown sampler {name!r}; choose from {sorted(_SAMPLERS)}")
