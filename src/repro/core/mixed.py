"""Mixed-variable kernels (hybrid models for mixed variables, [15]).

The GPTune package includes "hybrid models for mixed variables in
Bayesian optimization" (Luo et al., arXiv:2206.01409).  The ordinal
embedding the base kernels use for categorical parameters imposes a fake
ordering on choices like SuperLU's ``COLPERM``; this module provides the
principled alternative:

* :class:`MixedKernel` — a product kernel that applies an RBF over the
  continuous/integer coordinates and a Hamming-type exponential kernel
  over the categorical ones:

      k(x, x') = v * exp(-0.5 * sum_c ((x_c - x'_c) / l_c)^2)
                   * exp(-sum_h  w_h * 1[x_h != x'_h])

  which is positive semi-definite (a product of PSD kernels) and learns
  one "switch penalty" ``w_h`` per categorical dimension.

* :func:`mixed_kernel_for_space` — builds the kernel directly from a
  :class:`~repro.core.space.Space`, reading off which unit-cube columns
  are categorical.

Because categorical cells are encoded as disjoint unit-interval segments,
"inequality" is detected by cell membership, so the kernel plugs into the
existing unit-cube machinery unchanged (GP fitting, EI search, TLA).
"""

from __future__ import annotations

import numpy as np

from .kernels import Kernel, sq_dists
from .space import CategoricalParameter, Space

__all__ = ["MixedKernel", "mixed_kernel_for_space"]


class MixedKernel(Kernel):
    """RBF over numeric dims x Hamming-exponential over categorical dims.

    Parameters
    ----------
    dim:
        Total input dimensionality (unit-cube columns).
    categorical:
        Per-dimension flags: ``categorical[j]`` true if column ``j``
        ordinally encodes a categorical parameter.
    n_choices:
        Category count per dimension (1 for numeric dims); used to map a
        unit coordinate back to its category cell.
    """

    #: theta layout: [log variance, log ls (numeric dims), log w (categorical dims)]
    has_gradient = False

    def __init__(
        self,
        dim: int,
        categorical: list[bool],
        n_choices: list[int] | None = None,
        variance: float = 1.0,
        lengthscales=None,
        switch_weights=None,
    ) -> None:
        if len(categorical) != dim:
            raise ValueError(f"need {dim} categorical flags, got {len(categorical)}")
        self.categorical = list(categorical)
        self.numeric_idx = np.array(
            [j for j, c in enumerate(categorical) if not c], dtype=int
        )
        self.cat_idx = np.array(
            [j for j, c in enumerate(categorical) if c], dtype=int
        )
        if n_choices is None:
            n_choices = [1] * dim
        if len(n_choices) != dim:
            raise ValueError(f"need {dim} choice counts, got {len(n_choices)}")
        self.n_choices = np.asarray(n_choices, dtype=int)
        if np.any(self.n_choices[self.cat_idx] < 1):
            raise ValueError("categorical dimensions need n_choices >= 1")

        # base-class init handles variance + numeric lengthscales; we keep
        # a full-length lengthscale vector for simplicity (categorical
        # entries unused) and manage switch weights ourselves.
        super().__init__(dim, variance, lengthscales)
        if switch_weights is None:
            self.switch_weights = np.full(len(self.cat_idx), 0.7)
        else:
            sw = np.asarray(switch_weights, dtype=float).ravel()
            if sw.shape != (len(self.cat_idx),):
                raise ValueError(
                    f"need {len(self.cat_idx)} switch weights, got {sw.shape}"
                )
            self.switch_weights = sw.copy()
        if np.any(self.switch_weights <= 0):
            raise ValueError("switch weights must be positive")

    # -- hyperparameters -----------------------------------------------------
    @property
    def n_params(self) -> int:
        return 1 + len(self.numeric_idx) + len(self.cat_idx)

    def get_theta(self) -> np.ndarray:
        return np.concatenate(
            [
                [np.log(self.variance)],
                np.log(self.lengthscales[self.numeric_idx]),
                np.log(self.switch_weights),
            ]
        )

    def set_theta(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float).ravel()
        if theta.shape != (self.n_params,):
            raise ValueError(f"expected {self.n_params} params, got {theta.shape}")
        self.variance = float(np.exp(theta[0]))
        n_num = len(self.numeric_idx)
        self.lengthscales[self.numeric_idx] = np.exp(theta[1 : 1 + n_num])
        self.switch_weights = np.exp(theta[1 + n_num :])

    def bounds(self) -> list[tuple[float, float]]:
        var_b = (np.log(1e-4), np.log(1e4))
        ls_b = (np.log(5e-3), np.log(20.0))
        w_b = (np.log(1e-3), np.log(10.0))
        return (
            [var_b]
            + [ls_b] * len(self.numeric_idx)
            + [w_b] * len(self.cat_idx)
        )

    # -- evaluation ---------------------------------------------------------
    def _categories(self, X: np.ndarray) -> np.ndarray:
        """Category indices for the categorical columns of ``X``."""
        cols = X[:, self.cat_idx]
        n = self.n_choices[self.cat_idx][None, :]
        return np.minimum((cols * n).astype(int), n - 1)

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        Y = X if Y is None else Y
        if len(self.numeric_idx):
            d2 = sq_dists(
                X[:, self.numeric_idx],
                Y[:, self.numeric_idx],
                self.lengthscales[self.numeric_idx],
            )
            K = np.exp(-0.5 * d2)
        else:
            K = np.ones((X.shape[0], Y.shape[0]))
        if len(self.cat_idx):
            cx = self._categories(X)
            cy = self._categories(Y)
            # sum of switch penalties over mismatching categorical dims
            mismatch = cx[:, None, :] != cy[None, :, :]
            penalty = np.sum(mismatch * self.switch_weights[None, None, :], axis=2)
            K = K * np.exp(-penalty)
        return self.variance * K

    def clone(self) -> "MixedKernel":
        return MixedKernel(
            self.dim,
            self.categorical,
            self.n_choices.tolist(),
            self.variance,
            self.lengthscales.copy(),
            self.switch_weights.copy(),
        )


def mixed_kernel_for_space(space: Space, **kwargs) -> MixedKernel:
    """Build a :class:`MixedKernel` matching a space's parameter types."""
    categorical = [isinstance(p, CategoricalParameter) for p in space.parameters]
    n_choices = [
        p.n_values if isinstance(p, CategoricalParameter) else 1
        for p in space.parameters
    ]
    return MixedKernel(space.dim, categorical, n_choices, **kwargs)
