"""Linear Coregionalization Model (LCM) multitask GP (system S3).

GPTune's multitask surrogate [8] models ``T`` correlated tasks jointly:

    k((x, i), (x', j)) = sum_q  B_q[i, j] * k_q(x, x')
    B_q = a_q a_q^T + diag(kappa_q)

with unit-variance latent RBF kernels ``k_q`` (task scales live in the
coregionalization matrices ``B_q``).  Crucially for Multitask(TS) (paper
Sec. V-A2), the implementation supports an *unequal number of samples per
task*, including zero samples for the target task: the joint covariance is
assembled over the concatenation of all task datasets, indexed by a task
id per row.

Per-task output standardization keeps tasks with wildly different runtime
scales (e.g. a 32-node source vs a 64-node target) commensurate, matching
the normalization discussion in the paper's Sec. V-C.

The fit path is built for speed (the LCM refit dominates Multitask(TS)
iterations, cf. the GPTune line of work on LCM hyperparameter tuning):

* **Analytic NLL gradients** for every hyperparameter — lengthscales,
  coregionalization vectors ``a_q``, diagonals ``kappa_q``, per-task
  noise — via the trace identity ``dNLL/dtheta = -0.5 tr(W dK/dtheta)``
  with ``W = alpha alpha^T - K^{-1}``.  One Cholesky per objective
  evaluation replaces the ``n_params + 1`` factorizations of the
  finite-difference fallback (still available via ``gradient="fd"``).
* **Fit-scoped workspace**: the per-dimension squared-difference tensor
  and the task-index grids are precomputed once per :meth:`fit`, so each
  covariance/gradient evaluation is allocation-light O(n^2 (d + Q)).
* **Parallel multi-start MLE**: restarts run on a thread pool (NumPy and
  SciPy release the GIL inside BLAS/LAPACK) with per-start deterministic
  seeds and a deterministic winner selection.
* **Incremental refits**: :meth:`update` appends observations to the
  pinned joint Cholesky via rank-1 block growth — O(n^2) per point
  instead of the O(n^3) refactorization — mirroring
  :meth:`repro.core.gp.GaussianProcess.update`.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np
from scipy import linalg as sla
from scipy import optimize as sopt
from scipy.linalg import get_lapack_funcs

from . import perf
from .gp import GPFitError, cholesky_with_jitter
from .kernels import sq_dists

__all__ = ["LCM", "LCMFitError"]

_LOG_2PI = float(np.log(2.0 * np.pi))

#: finite sentinel for "factorization failed" MLE evaluations
_NLL_FAIL = 1e25

#: raw LAPACK triangular solve, as in repro.core.gp (skips scipy's
#: validation overhead on the O(n^2) incremental-update hot path)
(_trtrs,) = get_lapack_funcs(("trtrs",), (np.empty(0, dtype=np.float64),))


class LCMFitError(GPFitError):
    """Raised when the multitask covariance cannot be factorized."""


@dataclass
class _LCMState:
    X: np.ndarray  # (n_total, d) stacked inputs
    t: np.ndarray  # (n_total,) task index per row
    alpha: np.ndarray
    L: np.ndarray
    y_means: np.ndarray  # per-task standardization
    y_stds: np.ndarray
    #: per-task raw datasets in stacked-row order (fit order + appends);
    #: needed to re-standardize and to detect appendable refits
    X_tasks: list[np.ndarray]
    y_tasks: list[np.ndarray]
    #: raw targets aligned with the stacked rows
    y_raw: np.ndarray
    #: diagonal jitter baked into ``L`` (appended rows must match it)
    jitter: float = 0.0


@dataclass
class _Workspace:
    """Fit-scoped covariance-assembly cache.

    ``D`` holds the per-dimension squared differences ``(d, n, n)`` so a
    theta evaluation never recomputes pairwise distances from scratch;
    ``E`` is the one-hot task indicator ``(n, T)`` used by the gradient's
    segment sums; ``grid`` is the ``np.ix_`` task-index grid that scatters
    a ``(T, T)`` coregionalization matrix over the joint rows.
    """

    X: np.ndarray
    t: np.ndarray
    D: np.ndarray
    E: np.ndarray
    grid: tuple


def _make_workspace(X: np.ndarray, t: np.ndarray, n_tasks: int) -> _Workspace:
    diff = X[:, None, :] - X[None, :, :]
    D = np.ascontiguousarray(np.moveaxis(diff * diff, -1, 0))
    E = np.zeros((X.shape[0], n_tasks))
    E[np.arange(X.shape[0]), t] = 1.0
    return _Workspace(X=X, t=t, D=D, E=E, grid=np.ix_(t, t))


class _BestFactor:
    """Per-start tracker of the best (nll, theta, L, jitter) evaluated.

    Each MLE start owns one, so parallel restarts never share mutable
    state; the winners are merged deterministically after the pool joins.
    """

    __slots__ = ("nll", "key", "L", "jitter")

    def __init__(self) -> None:
        self.nll: float | None = None
        self.key: bytes | None = None
        self.L: np.ndarray | None = None
        self.jitter: float = 0.0

    def note(self, nll: float, theta: np.ndarray, L: np.ndarray, jitter: float) -> None:
        if self.nll is None or nll < self.nll:
            self.nll = float(nll)
            self.key = np.asarray(theta).tobytes()
            self.L = L
            self.jitter = jitter


class LCM:
    """Multitask GP over ``n_tasks`` tasks in a shared unit-cube input space.

    Parameters
    ----------
    n_tasks, dim:
        Number of tasks and input dimensionality.
    n_latent:
        Number of latent processes ``Q`` (GPTune's default of a small Q;
        1 captures one shared trend, 2 adds an independent component).
    optimize / max_fun / n_restarts:
        Hyperparameter-MLE controls, as in
        :class:`repro.core.gp.GaussianProcess`.
    gradient:
        ``"analytic"`` (default) evaluates the NLL gradient in closed
        form — one Cholesky per theta; ``"fd"`` keeps the L-BFGS-B
        finite-difference fallback (``n_params + 1`` factorizations per
        gradient), retained as the benchmark baseline.
    n_jobs:
        Thread-pool width for multi-start MLE (``None``: one thread per
        start up to the CPU count).  Results are independent of the
        worker count.
    """

    def __init__(
        self,
        n_tasks: int,
        dim: int,
        *,
        n_latent: int = 1,
        optimize: bool = True,
        max_fun: int = 60,
        n_restarts: int = 0,
        seed: int | None = None,
        gradient: str = "analytic",
        n_jobs: int | None = None,
    ) -> None:
        if n_tasks < 1 or dim < 1 or n_latent < 1:
            raise ValueError("n_tasks, dim, n_latent must all be >= 1")
        if gradient not in ("analytic", "fd"):
            raise ValueError(f"gradient must be 'analytic' or 'fd', got {gradient!r}")
        self.n_tasks = n_tasks
        self.dim = dim
        self.n_latent = n_latent
        self.optimize = optimize
        self.max_fun = int(max_fun)
        self.n_restarts = int(n_restarts)
        self.gradient = gradient
        self.n_jobs = n_jobs
        self._rng = np.random.default_rng(seed)
        self._theta = self._default_theta()
        self._state: _LCMState | None = None
        #: NLL of the training data at the adopted theta (set by fit/update)
        self.last_nll_: float | None = None
        #: factorization pinned at the best NLL seen during the current
        #: MLE, keyed on theta bytes; lets fit() reuse the Cholesky already
        #: computed at the optimum instead of reassembling the covariance
        self._best_factor: tuple[float, bytes, np.ndarray, float] | None = None

    # -- theta packing ------------------------------------------------------
    # Layout per latent q: [log ls (dim), a (n_tasks), log kappa (n_tasks)];
    # then [log noise (n_tasks)].
    @property
    def n_params(self) -> int:
        return self.n_latent * (self.dim + 2 * self.n_tasks) + self.n_tasks

    def _default_theta(self) -> np.ndarray:
        parts = []
        for _ in range(self.n_latent):
            parts.append(np.log(np.full(self.dim, 0.3)))  # lengthscales
            parts.append(np.full(self.n_tasks, 0.8))  # a_q
            parts.append(np.log(np.full(self.n_tasks, 0.1)))  # kappa_q
        parts.append(np.log(np.full(self.n_tasks, 1e-3)))  # noise
        return np.concatenate(parts)

    def _unpack(self, theta: np.ndarray):
        ls, a, kappa = [], [], []
        off = 0
        for _ in range(self.n_latent):
            ls.append(np.exp(theta[off : off + self.dim]))
            off += self.dim
            a.append(theta[off : off + self.n_tasks])
            off += self.n_tasks
            kappa.append(np.exp(theta[off : off + self.n_tasks]))
            off += self.n_tasks
        noise = np.exp(theta[off : off + self.n_tasks])
        return ls, a, kappa, noise

    def _bounds(self) -> list[tuple[float, float]]:
        b: list[tuple[float, float]] = []
        for _ in range(self.n_latent):
            b += [(np.log(5e-3), np.log(20.0))] * self.dim
            b += [(-5.0, 5.0)] * self.n_tasks
            b += [(np.log(1e-6), np.log(10.0))] * self.n_tasks
        b += [(np.log(1e-8), np.log(1.0))] * self.n_tasks
        return b

    # -- covariance assembly ---------------------------------------------------
    def _joint_cov(self, X: np.ndarray, t: np.ndarray, theta: np.ndarray) -> np.ndarray:
        ls, a, kappa, noise = self._unpack(theta)
        n = X.shape[0]
        K = np.zeros((n, n))
        for q in range(self.n_latent):
            kq = np.exp(-0.5 * sq_dists(X, X, ls[q]))
            B = np.outer(a[q], a[q]) + np.diag(kappa[q])
            K += B[np.ix_(t, t)] * kq
        K[np.diag_indices(n)] += noise[t]
        return K

    def _assemble(self, ws: _Workspace, theta: np.ndarray):
        """Joint covariance from the workspace, keeping the per-latent
        pieces (``k_q`` and the scattered ``B_q``) for gradient reuse."""
        ls, a, kappa, noise = self._unpack(theta)
        n = ws.X.shape[0]
        K = np.zeros((n, n))
        kqs, Bgrids = [], []
        for q in range(self.n_latent):
            inv2 = 1.0 / (ls[q] * ls[q])
            kq = np.exp(-0.5 * np.tensordot(inv2, ws.D, axes=1))
            B = np.outer(a[q], a[q]) + np.diag(kappa[q])
            Bg = B[ws.grid]
            K += Bg * kq
            kqs.append(kq)
            Bgrids.append(Bg)
        K[np.diag_indices(n)] += noise[ws.t]
        return K, kqs, Bgrids

    def _cross_cov(
        self, Xs: np.ndarray, task: int, X: np.ndarray, t: np.ndarray, theta: np.ndarray
    ) -> np.ndarray:
        ls, a, kappa, _ = self._unpack(theta)
        n_star = Xs.shape[0]
        K = np.zeros((n_star, X.shape[0]))
        for q in range(self.n_latent):
            kq = np.exp(-0.5 * sq_dists(Xs, X, ls[q]))
            b_row = a[q][task] * a[q][t]
            b_row = b_row + np.where(t == task, kappa[q][task], 0.0)
            K += b_row[None, :] * kq
        return K

    def _prior_var(self, task: int, theta: np.ndarray) -> float:
        _, a, kappa, _ = self._unpack(theta)
        return float(sum(a[q][task] ** 2 + kappa[q][task] for q in range(self.n_latent)))

    # -- fitting --------------------------------------------------------------
    def fit(self, datasets: list[tuple[np.ndarray, np.ndarray]]) -> "LCM":
        """Fit on per-task datasets ``[(X_0, y_0), ..., (X_{T-1}, y_{T-1})]``.

        Datasets may have different sizes; a dataset may be empty (the
        Multitask(TS) cold start: sources full, target empty).  At least
        two observations are required overall.
        """
        if len(datasets) != self.n_tasks:
            raise ValueError(f"expected {self.n_tasks} datasets, got {len(datasets)}")
        Xs, ts, ys_raw = [], [], []
        X_tasks: list[np.ndarray] = []
        y_tasks: list[np.ndarray] = []
        for i, (X, y) in enumerate(datasets):
            X = np.atleast_2d(np.asarray(X, dtype=float))
            y = np.asarray(y, dtype=float).ravel()
            if y.size == 0:
                X_tasks.append(np.zeros((0, self.dim)))
                y_tasks.append(np.zeros(0))
                continue
            if X.shape[1] != self.dim:
                raise ValueError(f"task {i}: dim {X.shape[1]} != {self.dim}")
            X_tasks.append(X.copy())
            y_tasks.append(y.copy())
            Xs.append(X)
            ts.append(np.full(y.size, i, dtype=int))
            ys_raw.append(y)
        if not Xs:
            raise ValueError("cannot fit LCM to zero observations")
        X_all = np.vstack(Xs)
        t_all = np.concatenate(ts)
        y_raw = np.concatenate(ys_raw)
        if y_raw.size < 2:
            raise ValueError("LCM needs at least two observations in total")
        y_means, y_stds = _task_standardization(y_tasks)
        y_all = (y_raw - y_means[t_all]) / y_stds[t_all]

        self._best_factor = None  # keyed on data as well as theta: reset
        if self.optimize:
            with perf.timer("lcm_mle"):
                self._optimize_theta(X_all, t_all, y_all)

        L, jitter = None, 0.0
        if self._best_factor is not None and self._best_factor[1] == self._theta.tobytes():
            # the MLE already factorized the covariance at the adopted
            # theta — reuse it instead of reassembling and refactorizing
            perf.incr("kernel_cache_hits")
            L, jitter = self._best_factor[2], self._best_factor[3]
        if L is None:
            perf.incr("kernel_cache_misses")
            K = self._joint_cov(X_all, t_all, self._theta)
            try:
                L, jitter = cholesky_with_jitter(K)
            except GPFitError as exc:
                raise LCMFitError(str(exc)) from exc
        alpha = sla.cho_solve((L, True), y_all, check_finite=False)
        self.last_nll_ = float(
            0.5 * y_all @ alpha + np.sum(np.log(np.diag(L))) + 0.5 * y_all.size * _LOG_2PI
        )
        self._state = _LCMState(
            X=X_all,
            t=t_all,
            alpha=alpha,
            L=L,
            y_means=y_means,
            y_stds=y_stds,
            X_tasks=X_tasks,
            y_tasks=y_tasks,
            y_raw=y_raw,
            jitter=jitter,
        )
        perf.incr("lcm_fits")
        return self

    # -- incremental refits -----------------------------------------------------
    def update(self, task: int, X_new: np.ndarray, y_new: np.ndarray) -> "LCM":
        """Append observations for one task without refitting theta.

        See :meth:`update_many`.
        """
        return self.update_many([(task, X_new, y_new)])

    def update_many(
        self, appends: list[tuple[int, np.ndarray, np.ndarray]]
    ) -> "LCM":
        """Append per-task observations, growing the pinned Cholesky.

        Each append ``(task, X_new, y_new)`` adds rows for ``task`` at the
        end of the joint system (row order is free: every row carries its
        task id, so predictions are ordering-independent).  The cached
        factor is extended by rank-1 block updates — O(n^2) per point
        instead of the O(n^3) refactorization — and the per-task
        standardization and ``alpha`` are recomputed over the combined
        data, so predictions match a from-scratch non-optimizing
        :meth:`fit` on the same data to round-off.

        Falls back to a full (non-optimizing) refit if the appended rows
        make the factorization numerically degenerate.
        """
        if self._state is None:
            raise RuntimeError("update() before fit()")
        st = self._state
        rows_X, rows_t, rows_y = [], [], []
        per_task: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for task, X_new, y_new in appends:
            if not 0 <= task < self.n_tasks:
                raise ValueError(f"task index {task} out of range [0, {self.n_tasks})")
            X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
            y_new = np.asarray(y_new, dtype=float).ravel()
            if X_new.shape[0] != y_new.shape[0]:
                raise ValueError(
                    f"x rows ({X_new.shape[0]}) != y length ({y_new.shape[0]})"
                )
            if y_new.size == 0:
                continue
            if X_new.shape[1] != self.dim:
                raise ValueError(f"x dimension {X_new.shape[1]} != {self.dim}")
            rows_X.append(X_new)
            rows_t.append(np.full(y_new.size, task, dtype=int))
            rows_y.append(y_new)
            old = per_task.get(task)
            if old is not None:
                X_new = np.vstack([old[0], X_new])
                y_new = np.concatenate([old[1], y_new])
            per_task[task] = (X_new, y_new)
        if not rows_X:
            return self

        X_all = np.vstack([st.X] + rows_X)
        t_all = np.concatenate([st.t] + rows_t)
        y_raw = np.concatenate([st.y_raw] + rows_y)
        n_old, m = st.X.shape[0], X_all.shape[0] - st.X.shape[0]
        noise = self._unpack(self._theta)[3]

        # grow the factor one row at a time, each step solving against the
        # previous (contiguous) factor via raw LAPACK; Fortran order keeps
        # every triangular solve copy-free
        L = st.L
        ok = True
        for i in range(m):
            k = n_old + i
            task = int(t_all[k])
            kvec = self._cross_cov(
                X_all[k][None, :], task, X_all[:k], t_all[:k], self._theta
            ).ravel()
            kss = self._prior_var(task, self._theta) + float(noise[task]) + st.jitter
            l12, info = _trtrs(L, kvec, lower=1, trans=0)
            d = kss - float(l12 @ l12) if info == 0 else -1.0
            if not np.isfinite(d) or d <= 0.0:
                ok = False
                break
            grown = np.empty((k + 1, k + 1), order="F")
            grown[:k, :k] = L
            grown[:k, k] = 0.0
            grown[k, :k] = l12
            grown[k, k] = np.sqrt(d)
            L = grown

        X_tasks = list(st.X_tasks)
        y_tasks = list(st.y_tasks)
        for task, (X_app, y_app) in per_task.items():
            X_tasks[task] = np.vstack([X_tasks[task], X_app])
            y_tasks[task] = np.concatenate([y_tasks[task], y_app])

        if not ok:
            # the append left the factor non-positive; rebuild through the
            # jitter ladder while keeping the current hyperparameters
            perf.incr("lcm_update_fallbacks")
            saved = self.optimize
            self.optimize = False
            try:
                return self.fit(list(zip(X_tasks, y_tasks)))
            finally:
                self.optimize = saved

        y_means, y_stds = _task_standardization(y_tasks)
        ys = (y_raw - y_means[t_all]) / y_stds[t_all]
        z, _ = _trtrs(L, ys, lower=1, trans=0)
        alpha, _ = _trtrs(L, z, lower=1, trans=1)
        self.last_nll_ = float(
            0.5 * ys @ alpha + np.sum(np.log(np.diag(L))) + 0.5 * ys.size * _LOG_2PI
        )
        self._state = _LCMState(
            X=X_all,
            t=t_all,
            alpha=alpha,
            L=L,
            y_means=y_means,
            y_stds=y_stds,
            X_tasks=X_tasks,
            y_tasks=y_tasks,
            y_raw=y_raw,
            jitter=st.jitter,
        )
        perf.incr("lcm_incremental_updates", m)
        return self

    def extends_fitted(
        self, datasets: list[tuple[np.ndarray, np.ndarray]]
    ) -> list[tuple[int, np.ndarray, np.ndarray]] | None:
        """Per-task appended rows if ``datasets`` extends the fitted data.

        Returns ``[]`` when the datasets are exactly the fitted data (the
        model can be reused as-is), a list of ``(task, X_app, y_app)``
        when every task's fitted rows are a row-for-row prefix of its new
        dataset (eligible for :meth:`update_many`), and ``None`` when any
        task's history diverges (a full refit is required).
        """
        if self._state is None or len(datasets) != self.n_tasks:
            return None
        st = self._state
        out: list[tuple[int, np.ndarray, np.ndarray]] = []
        for i, (X, y) in enumerate(datasets):
            X = np.atleast_2d(np.asarray(X, dtype=float))
            y = np.asarray(y, dtype=float).ravel()
            n = st.y_tasks[i].size
            if y.size < n:
                return None
            if y.size and X.shape[1] != self.dim:
                return None
            if n and (
                not np.array_equal(X[:n], st.X_tasks[i])
                or not np.array_equal(y[:n], st.y_tasks[i])
            ):
                return None
            if y.size > n:
                out.append((i, X[n:], y[n:]))
        return out

    # -- MLE objective -------------------------------------------------------
    def _nll(self, theta, X, t, y, pin: _BestFactor | None = None) -> float:
        """Finite-difference objective (baseline path, ``gradient="fd"``)."""
        K = self._joint_cov(X, t, theta)
        try:
            L, jitter = cholesky_with_jitter(K, max_tries=3)
        except GPFitError:
            return _NLL_FAIL
        alpha = sla.cho_solve((L, True), y, check_finite=False)
        nll = 0.5 * y @ alpha + np.sum(np.log(np.diag(L))) + 0.5 * y.size * _LOG_2PI
        if not np.isfinite(nll):
            return _NLL_FAIL
        if pin is not None:
            pin.note(float(nll), theta, L, jitter)
        return float(nll)

    def _nll_grad(self, theta, ws: _Workspace, y, pin: _BestFactor | None = None):
        """NLL and its analytic gradient — one Cholesky per evaluation.

        Uses ``dNLL/dtheta = -0.5 sum(W * dK/dtheta)`` with
        ``W = alpha alpha^T - K^{-1}``.  The per-latent derivative blocks
        are task-masked rescalings of the already-computed ``k_q``:

        * ``dK/dlog ls_qj = B_q[t,t'] k_q D_j / ls_qj^2``
        * ``dK/da_q[m]    = (1[t=m] a_q[t'] + a_q[t] 1[t'=m]) k_q``
        * ``dK/dlog kap_qm = kap_qm 1[t=m] 1[t'=m] k_q``
        * ``dK/dlog noi_m  = noi_m diag(1[t=m])``

        so every trace reduces to GEMMs and segment sums over the
        workspace's indicator matrix — no ``(n, n)`` derivative matrix is
        ever materialized per parameter.
        """
        perf.incr("lcm_grad_evals")
        ls, a, kappa, noise = self._unpack(theta)
        n = ws.X.shape[0]
        K, kqs, Bgrids = self._assemble(ws, theta)
        try:
            L, jitter = cholesky_with_jitter(K, max_tries=3)
        except GPFitError:
            return _NLL_FAIL, np.zeros_like(theta)
        alpha = sla.cho_solve((L, True), y, check_finite=False)
        nll = 0.5 * y @ alpha + np.sum(np.log(np.diag(L))) + 0.5 * n * _LOG_2PI
        if not np.isfinite(nll):
            return _NLL_FAIL, np.zeros_like(theta)
        if pin is not None:
            pin.note(float(nll), theta, L, jitter)
        Kinv = sla.cho_solve((L, True), np.eye(n), check_finite=False)
        W = np.outer(alpha, alpha) - Kinv  # dNLL/dtheta = -0.5 sum(W * dK)
        grad = np.empty_like(theta)
        off = 0
        for q in range(self.n_latent):
            P = W * kqs[q]
            # lengthscales: contract the squared-difference tensor against
            # W ∘ B_q[t,t'] ∘ k_q, one inner product per dimension
            tr = np.einsum("jab,ab->j", ws.D, P * Bgrids[q])
            grad[off : off + self.dim] = -0.5 * tr / (ls[q] * ls[q])
            off += self.dim
            # a_q: symmetric rank-one derivative -> 2x a segment sum of P a_t
            M = P @ ws.E  # (n, T)
            grad[off : off + self.n_tasks] = -(ws.E.T @ (M @ a[q]))
            off += self.n_tasks
            # kappa_q (log): the (m, m) task block of P, per task
            grad[off : off + self.n_tasks] = -0.5 * kappa[q] * np.einsum(
                "it,it->t", ws.E, M
            )
            off += self.n_tasks
        grad[off:] = -0.5 * noise * (ws.E.T @ np.diagonal(W))
        return float(nll), grad

    def _optimize_theta(self, X, t, y) -> None:
        bounds = self._bounds()
        lo = np.array([b[0] for b in bounds])
        hi = np.array([b[1] for b in bounds])
        theta0 = self._theta.copy()
        starts = [np.clip(theta0, lo, hi)]
        for _ in range(self.n_restarts):
            starts.append(self._rng.uniform(lo, hi))
        use_grad = self.gradient == "analytic"
        ws = _make_workspace(X, t, self.n_tasks) if use_grad else None

        def run_start(x0):
            pin = _BestFactor()
            if use_grad:
                res = sopt.minimize(
                    self._nll_grad,
                    x0,
                    args=(ws, y, pin),
                    jac=True,
                    method="L-BFGS-B",
                    bounds=bounds,
                    options={"maxfun": self.max_fun},
                )
            else:
                res = sopt.minimize(
                    self._nll,
                    x0,
                    args=(X, t, y, pin),
                    method="L-BFGS-B",
                    bounds=bounds,
                    options={"maxfun": self.max_fun, "eps": 1e-4},
                )
            return float(res.fun), res.x, pin

        workers = 1
        if len(starts) > 1:
            workers = min(
                len(starts), self.n_jobs if self.n_jobs else (os.cpu_count() or 1)
            )
        if workers > 1:
            # NumPy/SciPy release the GIL in BLAS/LAPACK, so restarts
            # overlap; ex.map preserves start order, keeping the winner
            # selection deterministic regardless of thread timing
            with ThreadPoolExecutor(max_workers=workers) as ex:
                results = list(ex.map(run_start, starts))
            perf.incr("lcm_parallel_starts", len(starts))
        else:
            results = [run_start(x0) for x0 in starts]

        best_theta, best_val = None, np.inf
        for val, x, pin in results:
            if val < best_val:
                best_val, best_theta = val, x
            if pin.nll is not None and (
                self._best_factor is None or pin.nll < self._best_factor[0]
            ):
                self._best_factor = (pin.nll, pin.key, pin.L, pin.jitter)
        if best_theta is not None and np.isfinite(best_val) and best_val < _NLL_FAIL:
            self._theta = best_theta
        else:
            # every start failed: keep (restore) the pre-optimization theta
            # rather than whatever the last probe happened to evaluate
            self._theta = theta0
            perf.incr("lcm_mle_restores")

    # -- prediction -------------------------------------------------------------
    def predict(self, task: int, Xs: np.ndarray, return_std: bool = True):
        """Posterior for ``task`` at points ``Xs``, in that task's scale."""
        if self._state is None:
            raise RuntimeError("predict() before fit()")
        if not 0 <= task < self.n_tasks:
            raise ValueError(f"task index {task} out of range [0, {self.n_tasks})")
        st = self._state
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        Kst = self._cross_cov(Xs, task, st.X, st.t, self._theta)
        m, s = st.y_means[task], st.y_stds[task]
        # tasks never observed keep unit standardization (mean 0 / std 1):
        if st.y_stds[task] == 1.0 and st.y_means[task] == 0.0 and task not in st.t:
            # fall back to the average observed scale so predictions are
            # commensurate with the sources (cold-start target task)
            obs = np.unique(st.t)
            m = float(np.mean(st.y_means[obs]))
            s = float(np.mean(st.y_stds[obs]))
        mean = Kst @ st.alpha * s + m
        if not return_std:
            return mean
        v = sla.solve_triangular(st.L, Kst.T, lower=True, check_finite=False)
        prior = self._prior_var(task, self._theta)
        var = np.maximum(prior - np.sum(v * v, axis=0), 1e-12)
        return mean, np.sqrt(var) * s

    def warm_start_from(self, other: "LCM") -> None:
        """Adopt another LCM's hyperparameters (amortizes refits)."""
        if (other.n_tasks, other.dim, other.n_latent) != (
            self.n_tasks,
            self.dim,
            self.n_latent,
        ):
            raise ValueError("incompatible LCM shapes for warm start")
        self._theta = other._theta.copy()

    def task_correlation(self) -> np.ndarray:
        """The learned task-correlation matrix (sum of B_q, normalized)."""
        ls, a, kappa, _ = self._unpack(self._theta)
        B = sum(np.outer(aq, aq) + np.diag(kq) for aq, kq in zip(a, kappa))
        d = np.sqrt(np.clip(np.diag(B), 1e-12, None))
        return B / np.outer(d, d)


def _task_standardization(y_tasks: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Per-task (mean, std) with unit fallbacks for empty/constant tasks."""
    T = len(y_tasks)
    means = np.zeros(T)
    stds = np.ones(T)
    for i, y in enumerate(y_tasks):
        if y.size == 0:
            continue
        m, s = float(np.mean(y)), float(np.std(y))
        if not np.isfinite(s) or s < 1e-12:
            s = 1.0
        means[i], stds[i] = m, s
    return means, stds
