"""Linear Coregionalization Model (LCM) multitask GP (system S3).

GPTune's multitask surrogate [8] models ``T`` correlated tasks jointly:

    k((x, i), (x', j)) = sum_q  B_q[i, j] * k_q(x, x')
    B_q = a_q a_q^T + diag(kappa_q)

with unit-variance latent RBF kernels ``k_q`` (task scales live in the
coregionalization matrices ``B_q``).  Crucially for Multitask(TS) (paper
Sec. V-A2), the implementation supports an *unequal number of samples per
task*, including zero samples for the target task: the joint covariance is
assembled over the concatenation of all task datasets, indexed by a task
id per row.

Per-task output standardization keeps tasks with wildly different runtime
scales (e.g. a 32-node source vs a 64-node target) commensurate, matching
the normalization discussion in the paper's Sec. V-C.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg as sla
from scipy import optimize as sopt

from . import perf
from .gp import GPFitError, cholesky_with_jitter
from .kernels import sq_dists

__all__ = ["LCM", "LCMFitError"]

_LOG_2PI = float(np.log(2.0 * np.pi))

#: finite sentinel for "factorization failed" MLE evaluations
_NLL_FAIL = 1e25


class LCMFitError(GPFitError):
    """Raised when the multitask covariance cannot be factorized."""


@dataclass
class _LCMState:
    X: np.ndarray  # (n_total, d) stacked inputs
    t: np.ndarray  # (n_total,) task index per row
    alpha: np.ndarray
    L: np.ndarray
    y_means: np.ndarray  # per-task standardization
    y_stds: np.ndarray


class LCM:
    """Multitask GP over ``n_tasks`` tasks in a shared unit-cube input space.

    Parameters
    ----------
    n_tasks, dim:
        Number of tasks and input dimensionality.
    n_latent:
        Number of latent processes ``Q`` (GPTune's default of a small Q;
        1 captures one shared trend, 2 adds an independent component).
    optimize / max_fun / n_restarts:
        Hyperparameter-MLE controls, as in
        :class:`repro.core.gp.GaussianProcess`.  Gradients are finite
        differences (the coregionalization parameters make analytic
        gradients bulky); ``max_fun`` caps cost.
    """

    def __init__(
        self,
        n_tasks: int,
        dim: int,
        *,
        n_latent: int = 1,
        optimize: bool = True,
        max_fun: int = 60,
        n_restarts: int = 0,
        seed: int | None = None,
    ) -> None:
        if n_tasks < 1 or dim < 1 or n_latent < 1:
            raise ValueError("n_tasks, dim, n_latent must all be >= 1")
        self.n_tasks = n_tasks
        self.dim = dim
        self.n_latent = n_latent
        self.optimize = optimize
        self.max_fun = int(max_fun)
        self.n_restarts = int(n_restarts)
        self._rng = np.random.default_rng(seed)
        self._theta = self._default_theta()
        self._state: _LCMState | None = None
        #: factorization pinned at the best NLL seen during the current
        #: MLE, keyed on theta bytes; lets fit() reuse the Cholesky already
        #: computed at the optimum instead of reassembling the covariance
        self._best_factor: tuple[float, bytes, np.ndarray, float] | None = None

    # -- theta packing ------------------------------------------------------
    # Layout per latent q: [log ls (dim), a (n_tasks), log kappa (n_tasks)];
    # then [log noise (n_tasks)].
    @property
    def n_params(self) -> int:
        return self.n_latent * (self.dim + 2 * self.n_tasks) + self.n_tasks

    def _default_theta(self) -> np.ndarray:
        parts = []
        for _ in range(self.n_latent):
            parts.append(np.log(np.full(self.dim, 0.3)))  # lengthscales
            parts.append(np.full(self.n_tasks, 0.8))  # a_q
            parts.append(np.log(np.full(self.n_tasks, 0.1)))  # kappa_q
        parts.append(np.log(np.full(self.n_tasks, 1e-3)))  # noise
        return np.concatenate(parts)

    def _unpack(self, theta: np.ndarray):
        ls, a, kappa = [], [], []
        off = 0
        for _ in range(self.n_latent):
            ls.append(np.exp(theta[off : off + self.dim]))
            off += self.dim
            a.append(theta[off : off + self.n_tasks])
            off += self.n_tasks
            kappa.append(np.exp(theta[off : off + self.n_tasks]))
            off += self.n_tasks
        noise = np.exp(theta[off : off + self.n_tasks])
        return ls, a, kappa, noise

    def _bounds(self) -> list[tuple[float, float]]:
        b: list[tuple[float, float]] = []
        for _ in range(self.n_latent):
            b += [(np.log(5e-3), np.log(20.0))] * self.dim
            b += [(-5.0, 5.0)] * self.n_tasks
            b += [(np.log(1e-6), np.log(10.0))] * self.n_tasks
        b += [(np.log(1e-8), np.log(1.0))] * self.n_tasks
        return b

    # -- covariance assembly ---------------------------------------------------
    def _joint_cov(self, X: np.ndarray, t: np.ndarray, theta: np.ndarray) -> np.ndarray:
        ls, a, kappa, noise = self._unpack(theta)
        n = X.shape[0]
        K = np.zeros((n, n))
        for q in range(self.n_latent):
            kq = np.exp(-0.5 * sq_dists(X, X, ls[q]))
            B = np.outer(a[q], a[q]) + np.diag(kappa[q])
            K += B[np.ix_(t, t)] * kq
        K[np.diag_indices(n)] += noise[t]
        return K

    def _cross_cov(
        self, Xs: np.ndarray, task: int, X: np.ndarray, t: np.ndarray, theta: np.ndarray
    ) -> np.ndarray:
        ls, a, kappa, _ = self._unpack(theta)
        n_star = Xs.shape[0]
        K = np.zeros((n_star, X.shape[0]))
        for q in range(self.n_latent):
            kq = np.exp(-0.5 * sq_dists(Xs, X, ls[q]))
            b_row = a[q][task] * a[q][t]
            b_row = b_row + np.where(t == task, kappa[q][task], 0.0)
            K += b_row[None, :] * kq
        return K

    def _prior_var(self, task: int, theta: np.ndarray) -> float:
        _, a, kappa, _ = self._unpack(theta)
        return float(sum(a[q][task] ** 2 + kappa[q][task] for q in range(self.n_latent)))

    # -- fitting --------------------------------------------------------------
    def fit(self, datasets: list[tuple[np.ndarray, np.ndarray]]) -> "LCM":
        """Fit on per-task datasets ``[(X_0, y_0), ..., (X_{T-1}, y_{T-1})]``.

        Datasets may have different sizes; a dataset may be empty (the
        Multitask(TS) cold start: sources full, target empty).  At least
        two observations are required overall.
        """
        if len(datasets) != self.n_tasks:
            raise ValueError(f"expected {self.n_tasks} datasets, got {len(datasets)}")
        Xs, ts, ys = [], [], []
        y_means = np.zeros(self.n_tasks)
        y_stds = np.ones(self.n_tasks)
        for i, (X, y) in enumerate(datasets):
            X = np.atleast_2d(np.asarray(X, dtype=float))
            y = np.asarray(y, dtype=float).ravel()
            if y.size == 0:
                continue
            if X.shape[1] != self.dim:
                raise ValueError(f"task {i}: dim {X.shape[1]} != {self.dim}")
            m, s = float(np.mean(y)), float(np.std(y))
            if not np.isfinite(s) or s < 1e-12:
                s = 1.0
            y_means[i], y_stds[i] = m, s
            Xs.append(X)
            ts.append(np.full(y.size, i, dtype=int))
            ys.append((y - m) / s)
        if not Xs:
            raise ValueError("cannot fit LCM to zero observations")
        X_all = np.vstack(Xs)
        t_all = np.concatenate(ts)
        y_all = np.concatenate(ys)
        if y_all.size < 2:
            raise ValueError("LCM needs at least two observations in total")

        self._best_factor = None  # keyed on data as well as theta: reset
        if self.optimize:
            with perf.timer("lcm_mle"):
                self._optimize_theta(X_all, t_all, y_all)

        L = None
        if self._best_factor is not None and self._best_factor[1] == self._theta.tobytes():
            # the MLE already factorized the covariance at the adopted
            # theta — reuse it instead of reassembling and refactorizing
            perf.incr("kernel_cache_hits")
            L = self._best_factor[2]
        if L is None:
            perf.incr("kernel_cache_misses")
            K = self._joint_cov(X_all, t_all, self._theta)
            try:
                L, _ = cholesky_with_jitter(K)
            except GPFitError as exc:
                raise LCMFitError(str(exc)) from exc
        alpha = sla.cho_solve((L, True), y_all, check_finite=False)
        self._state = _LCMState(
            X=X_all, t=t_all, alpha=alpha, L=L, y_means=y_means, y_stds=y_stds
        )
        perf.incr("lcm_fits")
        return self

    def _nll(self, theta: np.ndarray, X, t, y) -> float:
        K = self._joint_cov(X, t, theta)
        try:
            L, jitter = cholesky_with_jitter(K, max_tries=3)
        except GPFitError:
            return _NLL_FAIL
        alpha = sla.cho_solve((L, True), y, check_finite=False)
        nll = 0.5 * y @ alpha + np.sum(np.log(np.diag(L))) + 0.5 * y.size * _LOG_2PI
        if not np.isfinite(nll):
            return _NLL_FAIL
        if self._best_factor is None or nll < self._best_factor[0]:
            self._best_factor = (float(nll), np.asarray(theta).tobytes(), L, jitter)
        return float(nll)

    def _optimize_theta(self, X, t, y) -> None:
        bounds = self._bounds()
        lo = np.array([b[0] for b in bounds])
        hi = np.array([b[1] for b in bounds])
        theta0 = self._theta.copy()
        starts = [np.clip(theta0, lo, hi)]
        for _ in range(self.n_restarts):
            starts.append(self._rng.uniform(lo, hi))
        best_theta, best_val = None, np.inf
        for x0 in starts:
            res = sopt.minimize(
                self._nll,
                x0,
                args=(X, t, y),
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxfun": self.max_fun, "eps": 1e-4},
            )
            if res.fun < best_val:
                best_val, best_theta = float(res.fun), res.x
        if best_theta is not None and np.isfinite(best_val) and best_val < _NLL_FAIL:
            self._theta = best_theta
        else:
            # every start failed: keep (restore) the pre-optimization theta
            # rather than whatever the last probe happened to evaluate
            self._theta = theta0
            perf.incr("lcm_mle_restores")

    # -- prediction -------------------------------------------------------------
    def predict(self, task: int, Xs: np.ndarray, return_std: bool = True):
        """Posterior for ``task`` at points ``Xs``, in that task's scale."""
        if self._state is None:
            raise RuntimeError("predict() before fit()")
        if not 0 <= task < self.n_tasks:
            raise ValueError(f"task index {task} out of range [0, {self.n_tasks})")
        st = self._state
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        Kst = self._cross_cov(Xs, task, st.X, st.t, self._theta)
        m, s = st.y_means[task], st.y_stds[task]
        # tasks never observed keep unit standardization (mean 0 / std 1):
        if st.y_stds[task] == 1.0 and st.y_means[task] == 0.0 and task not in st.t:
            # fall back to the average observed scale so predictions are
            # commensurate with the sources (cold-start target task)
            obs = np.unique(st.t)
            m = float(np.mean(st.y_means[obs]))
            s = float(np.mean(st.y_stds[obs]))
        mean = Kst @ st.alpha * s + m
        if not return_std:
            return mean
        v = sla.solve_triangular(st.L, Kst.T, lower=True, check_finite=False)
        prior = self._prior_var(task, self._theta)
        var = np.maximum(prior - np.sum(v * v, axis=0), 1e-12)
        return mean, np.sqrt(var) * s

    def warm_start_from(self, other: "LCM") -> None:
        """Adopt another LCM's hyperparameters (amortizes refits)."""
        if (other.n_tasks, other.dim, other.n_latent) != (
            self.n_tasks,
            self.dim,
            self.n_latent,
        ):
            raise ValueError("incompatible LCM shapes for warm start")
        self._theta = other._theta.copy()

    def task_correlation(self) -> np.ndarray:
        """The learned task-correlation matrix (sum of B_q, normalized)."""
        ls, a, kappa, _ = self._unpack(self._theta)
        B = sum(np.outer(aq, aq) + np.diag(kq) for aq, kq in zip(a, kappa))
        d = np.sqrt(np.clip(np.diag(B), 1e-12, None))
        return B / np.outer(d, d)
