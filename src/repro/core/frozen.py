"""Frozen fast predictors for fitted, never-again-refit surrogates.

:class:`FrozenGP` pre-extracts a fitted :class:`~repro.core.gp.GaussianProcess`'s
``(alpha, L, scaled train inputs, y-statistics)`` once and serves batch
predictions with the train-side quantities cached and the triangular
solve done through raw LAPACK ``trtrs``.  The arithmetic mirrors
:meth:`GaussianProcess.predict` operation for operation, so the fast
path is bit-identical to the plain one — pure amortization, not an
approximation.

This machinery started life in :mod:`repro.tla.store` (which re-exports
it for compatibility); it lives in ``core`` so the large-n surrogates of
:mod:`repro.core.sparse` can provide frozen views of themselves without
an upward import.  :func:`frozen_view` dispatches on a ``frozen_view()``
method when the surrogate provides its own (the sparse classes do), and
falls back to the dense :class:`FrozenGP` extraction otherwise.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import get_lapack_funcs

from .gp import GaussianProcess
from .kernels import RBF, Matern32, Matern52

__all__ = ["FrozenGP", "frozen_view"]

(_trtrs,) = get_lapack_funcs(("trtrs",), (np.empty(0, dtype=np.float64),))

#: kernels whose prediction math FrozenGP can replay (all are functions
#: of the ARD-scaled squared distance)
_FAST_KERNELS = (RBF, Matern52, Matern32)


class FrozenGP:
    """Pre-extracted state of a fitted, never-again-refit GP.

    Prediction replays :meth:`GaussianProcess.predict` with the same
    operations in the same order (scaled-difference expansion, LAPACK
    ``trtrs`` for the variance solve), but the train-side quantities —
    the lengthscale-scaled training inputs and their squared norms —
    are computed once here instead of on every call.
    """

    __slots__ = (
        "kernel", "variance", "lengthscales", "B", "b_norms",
        "L", "alpha", "noise", "y_mean", "y_std",
    )

    def __init__(self, gp: GaussianProcess) -> None:
        if not isinstance(gp.kernel, _FAST_KERNELS):
            raise TypeError(f"unsupported kernel {type(gp.kernel).__name__}")
        st = gp.fit_state
        self.kernel = type(gp.kernel)
        self.variance = float(gp.kernel.variance)
        self.lengthscales = gp.kernel.lengthscales.copy()
        self.B = st.X / self.lengthscales
        self.b_norms = np.sum(self.B * self.B, axis=1)
        self.L = np.asfortranarray(st.L)
        self.alpha = st.alpha
        self.noise = float(gp.noise_variance)
        self.y_mean = st.y_mean
        self.y_std = st.y_std

    def _cross_cov(self, X: np.ndarray) -> np.ndarray:
        A = X / self.lengthscales
        d2 = (
            np.sum(A * A, axis=1)[:, None]
            + self.b_norms[None, :]
            - 2.0 * (A @ self.B.T)
        )
        d2 = np.maximum(d2, 0.0)
        if self.kernel is RBF:
            return self.variance * np.exp(-0.5 * d2)
        r = np.sqrt(d2)
        if self.kernel is Matern52:
            s = np.sqrt(5.0) * r
            return self.variance * (1.0 + s + s * s / 3.0) * np.exp(-s)
        s = np.sqrt(3.0) * r  # Matern32
        return self.variance * (1.0 + s) * np.exp(-s)

    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and std at ``X`` (original target scale)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self._cross_cov(X)
        mean = Ks @ self.alpha * self.y_std + self.y_mean
        v, _ = _trtrs(self.L, Ks.T, lower=1, trans=0)
        var = self.variance + self.noise - np.sum(v * v, axis=0)
        std = np.sqrt(np.maximum(var, 1e-12)) * self.y_std
        return mean, std


def frozen_view(gp) -> object | None:
    """The (cached) frozen fast predictor for a fitted surrogate, or ``None``.

    Surrogates that provide their own frozen extraction (the large-n
    classes in :mod:`repro.core.sparse`) are dispatched through their
    ``frozen_view()`` method.  Dense GPs get the :class:`FrozenGP`
    extraction, cached on the GP keyed by its fit version so a later
    ``fit``/``update`` invalidates it automatically.  ``None`` when the
    surrogate is unfitted or uses a kernel the fast path does not
    support (e.g. the mixed-space kernel).
    """
    own = getattr(gp, "frozen_view", None)
    if callable(own):
        return own()
    if not isinstance(gp, GaussianProcess):
        return None
    if not gp.fitted or not isinstance(gp.kernel, _FAST_KERNELS):
        return None
    cached = getattr(gp, "_frozen_cache", None)
    if cached is not None and cached[0] == gp.version:
        return cached[1]
    frozen = FrozenGP(gp)
    gp._frozen_cache = (gp.version, frozen)
    return frozen
