"""The paper's Eq. (1)-(2) surrogate combination, as reusable math.

Several layers merge per-model posteriors into one surrogate: the TLA
weighted-sum strategies and the ensemble shell (:mod:`repro.tla.base`,
one fixed weight per model) and the partitioned local-GP surrogate
(:mod:`repro.core.sparse`, one weight per model *per query point*).
Both reductions are the same formula — a weighted arithmetic mean of
the means and a weighted geometric mean of the standard deviations —
so the accumulation lives here, in ``core``, where both can import it.

The accumulation is a plain per-model loop (``mean += w * mu``), not an
einsum: it replays the historical TLA loop operation for operation, so
moving the math down a layer changed nothing bit-wise (the TLA store
tests pin exact equality between the fast and plain paths).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["normalized_weights", "normalized_weight_matrix", "combine_stacked"]

#: standard-deviation floor inside the geometric mean (Eq. (2) takes a
#: log; an exactly-zero std from an interpolating model must not -inf it)
STD_FLOOR = 1e-12


def normalized_weights(weights: np.ndarray, n_models: int) -> np.ndarray:
    """Validate Eq. (1)-(2) weights and normalize them to sum 1.

    Negative weights would flip a surrogate's contribution and corrupt
    the geometric-mean std (Eq. (2) assumes a convex combination in log
    space); unnormalized weights silently rescale the combined mean and
    inflate/deflate the combined std, so both are rejected/repaired here.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (n_models,):
        raise ValueError(f"need {n_models} weights, got shape {weights.shape}")
    if not np.all(np.isfinite(weights)):
        raise ValueError(f"weights must be finite, got {weights}")
    if np.any(weights < 0):
        raise ValueError(f"weights must be non-negative, got {weights}")
    total = float(np.sum(weights))
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return weights / total


def normalized_weight_matrix(W: np.ndarray) -> np.ndarray:
    """Per-point Eq. (1)-(2) weights: normalize each column of ``(k, n)``.

    Row ``j`` holds model ``j``'s weight at every query point; every
    column (one query point) must be non-negative with a positive sum,
    and is normalized to a convex combination.
    """
    W = np.asarray(W, dtype=float)
    if W.ndim != 2:
        raise ValueError(f"weight matrix must be 2-D, got shape {W.shape}")
    if not np.all(np.isfinite(W)) or np.any(W < 0):
        raise ValueError("per-point weights must be finite and non-negative")
    totals = W.sum(axis=0)
    if np.any(totals <= 0):
        raise ValueError("every query point needs a positive total weight")
    return W / totals


def combine_stacked(
    means: Sequence[np.ndarray],
    stds: Sequence[np.ndarray],
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. (1)-(2) over per-model posteriors already evaluated at the
    query batch.

    ``means``/``stds`` hold one ``(n,)`` array per model.  ``weights`` is
    either ``(k,)`` (one weight per model, already normalized) or
    ``(k, n)`` (one weight per model per point, columns already
    normalized).  Returns the combined ``(mean, std)``.
    """
    n = np.asarray(means[0]).shape[0]
    mean = np.zeros(n)
    log_std = np.zeros(n)
    for w, mu, sd in zip(weights, means, stds):
        mean += w * mu
        log_std += w * np.log(np.maximum(sd, STD_FLOOR))
    return mean, np.exp(log_std)
