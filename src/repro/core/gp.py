"""Gaussian-process regression with marginal-likelihood fitting (system S2).

This is the single-task surrogate behind NoTLA tuning, the per-task models
of the weighted-sum TLA algorithms, and the residual models of stacking.
Implementation notes (these follow standard GP practice and the HPC-python
guides' "vectorize, avoid copies, profile the Cholesky" advice):

* Targets are standardized internally (zero mean, unit variance); all
  predictions are returned in the original scale.
* The noise variance is a trainable hyperparameter with a floor, so
  deterministic objectives interpolate while noisy ones smooth.
* Hyperparameters are fit by multi-start L-BFGS-B on the negative log
  marginal likelihood, with analytic gradients when the kernel provides
  them (RBF) and finite differences otherwise.
* A progressively increased jitter guards Cholesky factorizations.
* The BO hot path is amortized two ways: :meth:`update` appends
  observations to the cached factorization in O(n^2) per point (no O(n^3)
  refit when hyperparameters are unchanged), and factorizations are
  cached keyed on the hyperparameter vector so :meth:`fit` reuses the
  Cholesky already computed at the MLE optimum instead of recomputing
  ``K``.  Both paths feed the :mod:`repro.core.perf` counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
from scipy import linalg as sla
from scipy import optimize as sopt
from scipy.linalg import get_lapack_funcs

from . import perf
from .kernels import RBF, Kernel

__all__ = ["GaussianProcess", "GPFitError", "cholesky_with_jitter"]

_LOG_2PI = float(np.log(2.0 * np.pi))

#: objective values at or above this are treated as "factorization failed"
#: sentinels by the MLE (they must stay finite so L-BFGS-B can retreat)
_NLL_FAIL = 1e25

#: bound on the per-fit factorization cache (entries are n-by-n factors)
_FACTOR_CACHE_MAX = 16


class GPFitError(RuntimeError):
    """Raised when a covariance matrix cannot be factorized.

    ``jitters`` carries the full diagonal-jitter ladder that was
    attempted before giving up (empty for non-factorization failures),
    so callers and logs can see how ill-conditioned the matrix actually
    was instead of just the final rung.
    """

    def __init__(self, message: str, jitters: tuple[float, ...] = ()) -> None:
        super().__init__(message)
        self.jitters = tuple(jitters)


#: raw LAPACK triangular solve — the scipy wrappers spend more time on
#: input validation than the O(n^2) solve itself on the update hot path
(_trtrs,) = get_lapack_funcs(("trtrs",), (np.empty(0, dtype=np.float64),))


def cholesky_with_jitter(K: np.ndarray, max_tries: int = 8) -> tuple[np.ndarray, float]:
    """Lower Cholesky factor of ``K``, adding diagonal jitter on failure.

    Returns the factor and the jitter actually used.  The matrix is first
    tried as-is; on failure all ``max_tries`` ladder rungs are attempted,
    starting at ``1e-10 * mean(diag)`` and growing tenfold per retry up to
    ``10 ** (max_tries - 11) * mean(diag)`` (``1e-3`` for the default 8).
    """
    diag_mean = float(np.mean(np.diag(K)))
    if not np.isfinite(diag_mean) or diag_mean <= 0:
        diag_mean = 1.0
    eye = np.eye(K.shape[0])
    tried: list[float] = []
    for attempt in range(max_tries + 1):
        jitter = 0.0 if attempt == 0 else diag_mean * 10.0 ** (attempt - 11)
        tried.append(jitter)
        try:
            L = sla.cholesky(K if attempt == 0 else K + jitter * eye, lower=True)
            if attempt:
                perf.incr("cholesky_retries", attempt)
                perf.incr("gp_jitter_retries", attempt)
            return L, jitter
        except sla.LinAlgError:
            continue
    perf.incr("cholesky_failures")
    perf.incr("gp_jitter_retries", max_tries)
    raise GPFitError(
        "covariance not positive definite; tried jitters "
        + ", ".join(f"{j:.2e}" for j in tried),
        jitters=tuple(tried),
    )


@dataclass
class _FitState:
    """Cached factorization for predictions."""

    X: np.ndarray
    alpha: np.ndarray  # K^{-1} y_std
    L: np.ndarray
    y_mean: float
    y_std: float
    #: raw (unstandardized) targets; needed to re-standardize on append
    y_raw: np.ndarray
    #: diagonal jitter baked into ``L`` (appended rows must match it)
    jitter: float = 0.0


class GaussianProcess:
    """GP regressor ``y ~ GP(0, k(x, x') + noise * I)`` on unit-cube inputs.

    Parameters
    ----------
    kernel:
        Covariance kernel; defaults to ARD RBF once the input dimension is
        known at :meth:`fit` time.
    noise_variance:
        Initial observation-noise variance (standardized-y units).
    optimize:
        Whether :meth:`fit` runs hyperparameter MLE; turn off to keep the
        current hyperparameters (used by the tuner's ``refit_every``
        heuristic to amortize optimization cost).
    n_restarts:
        Extra random restarts for the MLE multi-start.
    max_fun:
        L-BFGS-B function-evaluation cap per start.
    cache:
        Whether to cache Cholesky factorizations keyed on the
        hyperparameter vector (on by default; benchmarks disable it to
        measure the baseline).
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        *,
        noise_variance: float = 1e-4,
        optimize: bool = True,
        n_restarts: int = 1,
        max_fun: int = 80,
        seed: int | None = None,
        cache: bool = True,
    ) -> None:
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.optimize = optimize
        self.n_restarts = int(n_restarts)
        self.max_fun = int(max_fun)
        self.cache = bool(cache)
        self._rng = np.random.default_rng(seed)
        self._state: _FitState | None = None
        #: bumped on every fit()/update(); lets external caches (the TLA
        #: frozen-prediction memo) detect that a model changed
        self.version = 0
        #: theta-keyed factorization cache, valid for the current data only
        self._factor_cache: OrderedDict[bytes, tuple[np.ndarray, float]] = OrderedDict()
        #: pinned factorization at the best NLL seen during the current MLE
        self._mle_best: tuple[float, bytes, np.ndarray, float] | None = None

    # -- public API ---------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return self._state is not None

    @property
    def n_train(self) -> int:
        return 0 if self._state is None else self._state.X.shape[0]

    @property
    def fit_state(self) -> _FitState:
        """The cached factorization (read-only view for fast predictors).

        External consumers (:class:`repro.tla.store.FrozenGP`) use this
        to pre-extract ``(X, alpha, L, y-statistics)`` once for frozen
        models; they must treat the arrays as immutable.
        """
        if self._state is None:
            raise RuntimeError("fit_state before fit()")
        return self._state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit to data; ``X`` is ``(n, d)`` in the unit cube, ``y`` ``(n,)``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X rows ({X.shape[0]}) != y length ({y.shape[0]})")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP to zero observations")
        if self.kernel is None:
            self.kernel = RBF(X.shape[1])
        elif self.kernel.dim != X.shape[1]:
            raise ValueError(
                f"kernel dimension {self.kernel.dim} != data dimension {X.shape[1]}"
            )
        # the cache is keyed on theta only; new data invalidates it
        self._factor_cache.clear()
        self._mle_best = None

        y_mean = float(np.mean(y))
        y_std = float(np.std(y))
        if not np.isfinite(y_std) or y_std < 1e-12:
            y_std = 1.0
        ys = (y - y_mean) / y_std

        if self.optimize and X.shape[0] >= 2:
            with perf.timer("gp_mle"):
                self._optimize_hyperparameters(X, ys)

        L, jitter = self._factorization(X)
        alpha = sla.cho_solve((L, True), ys, check_finite=False)
        self._state = _FitState(
            X=X,
            alpha=alpha,
            L=L,
            y_mean=y_mean,
            y_std=y_std,
            y_raw=y.copy(),
            jitter=jitter,
        )
        self.version += 1
        perf.incr("gp_fits")
        return self

    def update(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Append observation(s) without refitting hyperparameters.

        Extends the cached Cholesky factor by rank-1 appends — O(n^2) per
        new point instead of the O(n^3) of a full :meth:`fit` — and
        recomputes the target standardization and ``alpha`` over the
        combined data, so predictions match a from-scratch fit on the same
        data (with hyperparameter optimization off) to round-off.

        Falls back to a full (non-optimizing) refit if the appended rows
        make the factorization numerically degenerate.
        """
        if self._state is None:
            raise RuntimeError("update() before fit()")
        st = self._state
        X_new = np.atleast_2d(np.asarray(x, dtype=float))
        y_new = np.asarray(y, dtype=float).ravel()
        if X_new.shape[0] != y_new.shape[0]:
            raise ValueError(f"x rows ({X_new.shape[0]}) != y length ({y_new.shape[0]})")
        if X_new.shape[0] == 0:
            return self
        if X_new.shape[1] != st.X.shape[1]:
            raise ValueError(
                f"x dimension {X_new.shape[1]} != training dimension {st.X.shape[1]}"
            )
        n_old, m = st.X.shape[0], X_new.shape[0]
        X_all = np.vstack([st.X, X_new])
        y_raw = np.concatenate([st.y_raw, y_new])

        # grow the factor one row at a time, each step solving against the
        # previous (contiguous) factor via raw LAPACK; Fortran order keeps
        # every triangular solve copy-free
        L = st.L
        ok = True
        for i in range(m):
            k = n_old + i
            row = X_all[k]
            kvec = self.kernel(row[None, :], X_all[:k]).ravel()
            kss = float(self.kernel.diag(row[None, :])[0]) + self.noise_variance + st.jitter
            l12, info = _trtrs(L, kvec, lower=1, trans=0)
            d = kss - float(l12 @ l12) if info == 0 else -1.0
            if not np.isfinite(d) or d <= 0.0:
                ok = False
                break
            grown = np.empty((k + 1, k + 1), order="F")
            grown[:k, :k] = L
            grown[:k, k] = 0.0
            grown[k, :k] = l12
            grown[k, k] = np.sqrt(d)
            L = grown
        if not ok:
            # the append left the factor non-positive; rebuild through the
            # jitter ladder while keeping the current hyperparameters
            perf.incr("gp_update_fallbacks")
            saved = self.optimize
            self.optimize = False
            try:
                return self.fit(X_all, y_raw)
            finally:
                self.optimize = saved

        y_mean = float(np.mean(y_raw))
        y_std = float(np.std(y_raw))
        if not np.isfinite(y_std) or y_std < 1e-12:
            y_std = 1.0
        z, _ = _trtrs(L, (y_raw - y_mean) / y_std, lower=1, trans=0)
        alpha, _ = _trtrs(L, z, lower=1, trans=1)
        self._state = _FitState(
            X=X_all,
            alpha=alpha,
            L=L,
            y_mean=y_mean,
            y_std=y_std,
            y_raw=y_raw,
            jitter=st.jitter,
        )
        self._factor_cache.clear()
        self.version += 1
        perf.incr("gp_incremental_updates", m)
        return self

    def extends_training_data(self, X: np.ndarray, y: np.ndarray) -> int | None:
        """Number of rows ``(X, y)`` appends to the fitted data, else ``None``.

        Returns 0 when the data is exactly the fitted training set (the
        model can be reused as-is), a positive count when the fitted set is
        a row-for-row prefix (eligible for :meth:`update`), and ``None``
        when the histories diverge (a full refit is required).
        """
        if self._state is None:
            return None
        st = self._state
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        n = st.X.shape[0]
        if X.shape[0] < n or X.shape[1] != st.X.shape[1]:
            return None
        if not np.array_equal(X[:n], st.X) or not np.array_equal(y[:n], st.y_raw):
            return None
        return X.shape[0] - n

    def predict(self, X: np.ndarray, return_std: bool = True):
        """Posterior mean (and standard deviation) at ``X``, original scale."""
        if self._state is None:
            raise RuntimeError("predict() before fit()")
        st = self._state
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self.kernel(X, st.X)
        mean = Ks @ st.alpha * st.y_std + st.y_mean
        if not return_std:
            return mean
        v = sla.solve_triangular(st.L, Ks.T, lower=True, check_finite=False)
        var = self.kernel.diag(X) + self.noise_variance - np.sum(v * v, axis=0)
        std = np.sqrt(np.maximum(var, 1e-12)) * st.y_std
        return mean, std

    def predict_mean(self, X: np.ndarray) -> np.ndarray:
        return self.predict(X, return_std=False)

    def log_marginal_likelihood(self) -> float:
        """LML of the training data under the current hyperparameters."""
        if self._state is None:
            raise RuntimeError("log_marginal_likelihood() before fit()")
        st = self._state
        ys = st.L @ (st.L.T @ st.alpha)  # reconstruct standardized y
        return float(
            -0.5 * ys @ st.alpha
            - np.sum(np.log(np.diag(st.L)))
            - 0.5 * st.X.shape[0] * _LOG_2PI
        )

    # -- factorization cache -------------------------------------------------
    def _factorization(
        self, X: np.ndarray, max_tries: int = 8
    ) -> tuple[np.ndarray, float]:
        """Cholesky of ``kernel(X) + noise I`` at the current theta, cached.

        The cache is keyed on the hyperparameter vector and cleared
        whenever the training data changes, so :meth:`fit` and the MLE
        objective never factorize the same ``(theta, X)`` pair twice.
        """
        if not self.cache:
            K = self.kernel(X) + self.noise_variance * np.eye(X.shape[0])
            return cholesky_with_jitter(K, max_tries=max_tries)
        key = self._theta().tobytes()
        if self._mle_best is not None and self._mle_best[1] == key:
            perf.incr("kernel_cache_hits")
            return self._mle_best[2], self._mle_best[3]
        hit = self._factor_cache.get(key)
        if hit is not None:
            self._factor_cache.move_to_end(key)
            perf.incr("kernel_cache_hits")
            return hit
        perf.incr("kernel_cache_misses")
        K = self.kernel(X) + self.noise_variance * np.eye(X.shape[0])
        L, jitter = cholesky_with_jitter(K, max_tries=max_tries)
        self._factor_cache[key] = (L, jitter)
        while len(self._factor_cache) > _FACTOR_CACHE_MAX:
            self._factor_cache.popitem(last=False)
        return L, jitter

    def _note_mle_eval(self, nll: float, L: np.ndarray, jitter: float) -> None:
        """Pin the factorization at the best NLL seen (LRU-eviction-proof)."""
        if self._mle_best is None or nll < self._mle_best[0]:
            self._mle_best = (nll, self._theta().tobytes(), L, jitter)

    # -- MLE ---------------------------------------------------------------
    def _theta(self) -> np.ndarray:
        return np.concatenate([self.kernel.get_theta(), [np.log(self.noise_variance)]])

    def _set_theta(self, theta: np.ndarray) -> None:
        self.kernel.set_theta(theta[:-1])
        self.noise_variance = float(np.exp(theta[-1]))

    def _bounds(self) -> list[tuple[float, float]]:
        return self.kernel.bounds() + [(np.log(1e-8), np.log(1.0))]

    def _nll(self, theta: np.ndarray, X: np.ndarray, ys: np.ndarray) -> float:
        self._set_theta(theta)
        try:
            L, jitter = self._factorization(X, max_tries=3)
        except GPFitError:
            return _NLL_FAIL
        alpha = sla.cho_solve((L, True), ys, check_finite=False)
        nll = 0.5 * ys @ alpha + np.sum(np.log(np.diag(L))) + 0.5 * len(ys) * _LOG_2PI
        if not np.isfinite(nll):
            return _NLL_FAIL
        self._note_mle_eval(float(nll), L, jitter)
        return float(nll)

    def _nll_grad(self, theta, X, ys):
        """NLL and analytic gradient (requires kernel gradients)."""
        self._set_theta(theta)
        n = X.shape[0]
        try:
            L, jitter = self._factorization(X, max_tries=3)
        except GPFitError:
            return _NLL_FAIL, np.zeros_like(theta)
        alpha = sla.cho_solve((L, True), ys, check_finite=False)
        nll = 0.5 * ys @ alpha + np.sum(np.log(np.diag(L))) + 0.5 * n * _LOG_2PI
        if not np.isfinite(nll):
            return _NLL_FAIL, np.zeros_like(theta)
        self._note_mle_eval(float(nll), L, jitter)
        Kinv = sla.cho_solve((L, True), np.eye(n), check_finite=False)
        W = np.outer(alpha, alpha) - Kinv  # dLML/dK = 0.5 W
        grads = np.empty_like(theta)
        dK = self.kernel.gradient(X)
        for i in range(dK.shape[0]):
            grads[i] = -0.5 * np.sum(W * dK[i])
        # noise term: dK/d log(noise) = noise * I
        grads[-1] = -0.5 * self.noise_variance * np.trace(W)
        return float(nll), grads

    def _optimize_hyperparameters(self, X: np.ndarray, ys: np.ndarray) -> None:
        bounds = self._bounds()
        theta0 = self._theta()
        use_grad = getattr(self.kernel, "has_gradient", False)
        if use_grad:
            fun = lambda th: self._nll_grad(th, X, ys)
        else:
            fun = lambda th: self._nll(th, X, ys)

        starts = [theta0]
        for _ in range(self.n_restarts):
            starts.append(
                np.array([self._rng.uniform(lo, hi) for lo, hi in bounds])
            )
        best_theta, best_val = None, np.inf
        for x0 in starts:
            x0 = np.clip(x0, [b[0] for b in bounds], [b[1] for b in bounds])
            res = sopt.minimize(
                fun,
                x0,
                jac=use_grad,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxfun": self.max_fun},
            )
            if res.fun < best_val:
                best_val, best_theta = float(res.fun), res.x
        if best_theta is not None and np.isfinite(best_val) and best_val < _NLL_FAIL:
            self._set_theta(best_theta)
        else:
            # every start failed: the L-BFGS-B probes left the kernel at an
            # arbitrary theta — restore the pre-optimization state
            self._set_theta(theta0)
            perf.incr("gp_mle_restores")

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> dict:
        """Portable description (kernel hyperparameters + training stats).

        Used by the crowd repository's ``QuerySurrogateModel`` and the
        frozen-model registry to ship models between users without
        pickling.  The snapshot carries the *raw* kernel parameters, the
        fitted noise variance, the jitter the Cholesky ladder settled on
        and the raw targets, so :meth:`from_dict` reproduces the fitted
        predictor bit for bit — log-space ``theta`` round-trips
        (``exp(log(x))``) and re-running the jitter ladder can both drift
        the factor by an ulp, which is enough to break the registry's
        served-equals-local guarantee.
        """
        if self._state is None:
            raise RuntimeError("cannot serialize an unfitted GP")
        st = self._state
        return {
            "kernel": type(self.kernel).__name__.lower(),
            "theta": self._theta().tolist(),
            "variance": float(self.kernel.variance),
            "lengthscales": self.kernel.lengthscales.tolist(),
            "noise_variance": float(self.noise_variance),
            "jitter": float(st.jitter),
            "X": st.X.tolist(),
            "y_mean": st.y_mean,
            "y_std": st.y_std,
            "y_raw": st.y_raw.tolist(),
            "alpha": st.alpha.tolist(),
        }

    @staticmethod
    def from_dict(doc: dict) -> "GaussianProcess":
        from .kernels import kernel_from_name

        X = np.asarray(doc["X"], dtype=float)
        if "variance" in doc:
            # exact path: raw parameters, no log round-trip
            kernel = kernel_from_name(
                doc["kernel"],
                X.shape[1],
                variance=float(doc["variance"]),
                lengthscales=doc["lengthscales"],
            )
            gp = GaussianProcess(
                kernel, noise_variance=float(doc["noise_variance"]), optimize=False
            )
        else:  # legacy theta-only snapshot
            gp = GaussianProcess(
                kernel_from_name(doc["kernel"], X.shape[1]), optimize=False
            )
            theta = np.asarray(doc["theta"], dtype=float)
            gp.kernel.set_theta(theta[:-1])
            gp.noise_variance = float(np.exp(theta[-1]))
        eye = np.eye(X.shape[0])
        K = gp.kernel(X) + gp.noise_variance * eye
        jitter = float(doc.get("jitter", 0.0))
        if "jitter" in doc:
            # replay the fit's factorization exactly: same matrix, same
            # jitter rung, one cholesky call — identical L to the fit's
            try:
                L = sla.cholesky(K if jitter == 0.0 else K + jitter * eye, lower=True)
            except sla.LinAlgError:
                # snapshot from a different BLAS/platform: fall back to
                # the ladder rather than refusing to load
                L, jitter = cholesky_with_jitter(K)
        else:
            L, jitter = cholesky_with_jitter(K)
        alpha = np.asarray(doc["alpha"], dtype=float)
        if "y_raw" in doc:
            y_raw = np.asarray(doc["y_raw"], dtype=float)
        else:
            # reconstruct the raw targets so incremental updates keep working
            ys = L @ (L.T @ alpha)
            y_raw = ys * float(doc["y_std"]) + float(doc["y_mean"])
        gp._state = _FitState(
            X=X,
            alpha=alpha,
            L=L,
            y_mean=float(doc["y_mean"]),
            y_std=float(doc["y_std"]),
            y_raw=y_raw,
            jitter=jitter,
        )
        gp.version += 1
        return gp
