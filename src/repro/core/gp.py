"""Gaussian-process regression with marginal-likelihood fitting (system S2).

This is the single-task surrogate behind NoTLA tuning, the per-task models
of the weighted-sum TLA algorithms, and the residual models of stacking.
Implementation notes (these follow standard GP practice and the HPC-python
guides' "vectorize, avoid copies, profile the Cholesky" advice):

* Targets are standardized internally (zero mean, unit variance); all
  predictions are returned in the original scale.
* The noise variance is a trainable hyperparameter with a floor, so
  deterministic objectives interpolate while noisy ones smooth.
* Hyperparameters are fit by multi-start L-BFGS-B on the negative log
  marginal likelihood, with analytic gradients when the kernel provides
  them (RBF) and finite differences otherwise.
* A progressively increased jitter guards Cholesky factorizations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg as sla
from scipy import optimize as sopt

from .kernels import RBF, Kernel

__all__ = ["GaussianProcess", "GPFitError", "cholesky_with_jitter"]

_LOG_2PI = float(np.log(2.0 * np.pi))


class GPFitError(RuntimeError):
    """Raised when a covariance matrix cannot be factorized."""


def cholesky_with_jitter(K: np.ndarray, max_tries: int = 8) -> tuple[np.ndarray, float]:
    """Lower Cholesky factor of ``K``, adding diagonal jitter on failure.

    Returns the factor and the jitter actually used.  Jitter starts at
    ``1e-10 * mean(diag)`` and grows tenfold per retry.
    """
    diag_mean = float(np.mean(np.diag(K)))
    if not np.isfinite(diag_mean) or diag_mean <= 0:
        diag_mean = 1.0
    jitter = 0.0
    for attempt in range(max_tries):
        try:
            L = sla.cholesky(K + jitter * np.eye(K.shape[0]), lower=True)
            return L, jitter
        except sla.LinAlgError:
            jitter = diag_mean * 10.0 ** (attempt - 10)
    raise GPFitError(f"covariance not positive definite even with jitter {jitter:.2e}")


@dataclass
class _FitState:
    """Cached factorization for predictions."""

    X: np.ndarray
    alpha: np.ndarray  # K^{-1} y_std
    L: np.ndarray
    y_mean: float
    y_std: float


class GaussianProcess:
    """GP regressor ``y ~ GP(0, k(x, x') + noise * I)`` on unit-cube inputs.

    Parameters
    ----------
    kernel:
        Covariance kernel; defaults to ARD RBF once the input dimension is
        known at :meth:`fit` time.
    noise_variance:
        Initial observation-noise variance (standardized-y units).
    optimize:
        Whether :meth:`fit` runs hyperparameter MLE; turn off to keep the
        current hyperparameters (used by the tuner's ``refit_every``
        heuristic to amortize optimization cost).
    n_restarts:
        Extra random restarts for the MLE multi-start.
    max_fun:
        L-BFGS-B function-evaluation cap per start.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        *,
        noise_variance: float = 1e-4,
        optimize: bool = True,
        n_restarts: int = 1,
        max_fun: int = 80,
        seed: int | None = None,
    ) -> None:
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.optimize = optimize
        self.n_restarts = int(n_restarts)
        self.max_fun = int(max_fun)
        self._rng = np.random.default_rng(seed)
        self._state: _FitState | None = None

    # -- public API ---------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return self._state is not None

    @property
    def n_train(self) -> int:
        return 0 if self._state is None else self._state.X.shape[0]

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit to data; ``X`` is ``(n, d)`` in the unit cube, ``y`` ``(n,)``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X rows ({X.shape[0]}) != y length ({y.shape[0]})")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP to zero observations")
        if self.kernel is None:
            self.kernel = RBF(X.shape[1])
        elif self.kernel.dim != X.shape[1]:
            raise ValueError(
                f"kernel dimension {self.kernel.dim} != data dimension {X.shape[1]}"
            )

        y_mean = float(np.mean(y))
        y_std = float(np.std(y))
        if not np.isfinite(y_std) or y_std < 1e-12:
            y_std = 1.0
        ys = (y - y_mean) / y_std

        if self.optimize and X.shape[0] >= 2:
            self._optimize_hyperparameters(X, ys)

        K = self.kernel(X) + self.noise_variance * np.eye(X.shape[0])
        L, _ = cholesky_with_jitter(K)
        alpha = sla.cho_solve((L, True), ys)
        self._state = _FitState(X=X, alpha=alpha, L=L, y_mean=y_mean, y_std=y_std)
        return self

    def predict(self, X: np.ndarray, return_std: bool = True):
        """Posterior mean (and standard deviation) at ``X``, original scale."""
        if self._state is None:
            raise RuntimeError("predict() before fit()")
        st = self._state
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self.kernel(X, st.X)
        mean = Ks @ st.alpha * st.y_std + st.y_mean
        if not return_std:
            return mean
        v = sla.solve_triangular(st.L, Ks.T, lower=True)
        var = self.kernel.diag(X) + self.noise_variance - np.sum(v * v, axis=0)
        std = np.sqrt(np.maximum(var, 1e-12)) * st.y_std
        return mean, std

    def predict_mean(self, X: np.ndarray) -> np.ndarray:
        return self.predict(X, return_std=False)

    def log_marginal_likelihood(self) -> float:
        """LML of the training data under the current hyperparameters."""
        if self._state is None:
            raise RuntimeError("log_marginal_likelihood() before fit()")
        st = self._state
        ys = st.L @ (st.L.T @ st.alpha)  # reconstruct standardized y
        return float(
            -0.5 * ys @ st.alpha
            - np.sum(np.log(np.diag(st.L)))
            - 0.5 * st.X.shape[0] * _LOG_2PI
        )

    # -- MLE ---------------------------------------------------------------
    def _theta(self) -> np.ndarray:
        return np.concatenate([self.kernel.get_theta(), [np.log(self.noise_variance)]])

    def _set_theta(self, theta: np.ndarray) -> None:
        self.kernel.set_theta(theta[:-1])
        self.noise_variance = float(np.exp(theta[-1]))

    def _bounds(self) -> list[tuple[float, float]]:
        return self.kernel.bounds() + [(np.log(1e-8), np.log(1.0))]

    def _nll(self, theta: np.ndarray, X: np.ndarray, ys: np.ndarray) -> float:
        self._set_theta(theta)
        K = self.kernel(X) + self.noise_variance * np.eye(X.shape[0])
        try:
            L, _ = cholesky_with_jitter(K, max_tries=3)
        except GPFitError:
            return 1e25
        alpha = sla.cho_solve((L, True), ys)
        nll = 0.5 * ys @ alpha + np.sum(np.log(np.diag(L))) + 0.5 * len(ys) * _LOG_2PI
        return float(nll) if np.isfinite(nll) else 1e25

    def _nll_grad(self, theta, X, ys):
        """NLL and analytic gradient (requires kernel gradients)."""
        self._set_theta(theta)
        n = X.shape[0]
        K = self.kernel(X) + self.noise_variance * np.eye(n)
        try:
            L, _ = cholesky_with_jitter(K, max_tries=3)
        except GPFitError:
            return 1e25, np.zeros_like(theta)
        alpha = sla.cho_solve((L, True), ys)
        nll = 0.5 * ys @ alpha + np.sum(np.log(np.diag(L))) + 0.5 * n * _LOG_2PI
        if not np.isfinite(nll):
            return 1e25, np.zeros_like(theta)
        Kinv = sla.cho_solve((L, True), np.eye(n))
        W = np.outer(alpha, alpha) - Kinv  # dLML/dK = 0.5 W
        grads = np.empty_like(theta)
        dK = self.kernel.gradient(X)
        for i in range(dK.shape[0]):
            grads[i] = -0.5 * np.sum(W * dK[i])
        # noise term: dK/d log(noise) = noise * I
        grads[-1] = -0.5 * self.noise_variance * np.trace(W)
        return float(nll), grads

    def _optimize_hyperparameters(self, X: np.ndarray, ys: np.ndarray) -> None:
        bounds = self._bounds()
        use_grad = getattr(self.kernel, "has_gradient", False)
        if use_grad:
            fun = lambda th: self._nll_grad(th, X, ys)
        else:
            fun = lambda th: self._nll(th, X, ys)

        starts = [self._theta()]
        for _ in range(self.n_restarts):
            starts.append(
                np.array([self._rng.uniform(lo, hi) for lo, hi in bounds])
            )
        best_theta, best_val = None, np.inf
        for x0 in starts:
            x0 = np.clip(x0, [b[0] for b in bounds], [b[1] for b in bounds])
            res = sopt.minimize(
                fun,
                x0,
                jac=use_grad,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxfun": self.max_fun},
            )
            if res.fun < best_val:
                best_val, best_theta = float(res.fun), res.x
        if best_theta is not None and np.isfinite(best_val):
            self._set_theta(best_theta)

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> dict:
        """Portable description (kernel hyperparameters + training stats).

        Used by the crowd repository's ``QuerySurrogateModel`` to ship
        models between users without pickling.
        """
        if self._state is None:
            raise RuntimeError("cannot serialize an unfitted GP")
        st = self._state
        return {
            "kernel": type(self.kernel).__name__.lower(),
            "theta": self._theta().tolist(),
            "X": st.X.tolist(),
            "y_mean": st.y_mean,
            "y_std": st.y_std,
            "alpha": st.alpha.tolist(),
        }

    @staticmethod
    def from_dict(doc: dict) -> "GaussianProcess":
        from .kernels import kernel_from_name

        X = np.asarray(doc["X"], dtype=float)
        gp = GaussianProcess(kernel_from_name(doc["kernel"], X.shape[1]), optimize=False)
        theta = np.asarray(doc["theta"], dtype=float)
        gp.kernel.set_theta(theta[:-1])
        gp.noise_variance = float(np.exp(theta[-1]))
        K = gp.kernel(X) + gp.noise_variance * np.eye(X.shape[0])
        L, _ = cholesky_with_jitter(K)
        gp._state = _FitState(
            X=X,
            alpha=np.asarray(doc["alpha"], dtype=float),
            L=L,
            y_mean=float(doc["y_mean"]),
            y_std=float(doc["y_std"]),
        )
        return gp
