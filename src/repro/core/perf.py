"""Lightweight performance observability for the BO hot path.

The tuning loop is instrumented with *counters* (how many GP fits,
incremental updates, Cholesky retries, acquisition evaluations, kernel
cache hits), *nested timers* (where the per-iteration wall time goes:
surrogate fit vs acquisition search) and *gauges* (sampled quantities
like engine queue depth or worker utilization).  The overhead is a few
hundred nanoseconds per event, so the instrumentation stays on
permanently.

Design: a stack of :class:`PerfStats` collectors.  A module-level default
collector always exists (process-wide totals); :meth:`Tuner.tune` pushes
a fresh collector via :func:`collect` so every :class:`TuningResult`
carries the stats of exactly its own run.  Events are recorded into
*all* active collectors, which makes nested tuning runs (ensembles,
GPTuneBand brackets) compose naturally.

Thread-safety: the asynchronous engine (:mod:`repro.engine`) records
events from worker threads concurrently with the event loop.  The
collector stack is process-global (worker events reach the collectors
the main thread pushed), every mutation is lock-guarded, and the
*timer nesting path* is thread-local so concurrent workers cannot
interleave each other's dotted timer names.

Timer names nest by call structure: a ``timer("fit")`` entered while
``timer("surrogate")`` is active records under ``"surrogate.fit"``.

Example
-------
>>> from repro.core import perf
>>> with perf.collect() as stats:
...     with perf.timer("surrogate"):
...         perf.incr("gp_fits")
>>> stats.snapshot()["counters"]["gp_fits"]
1
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "PerfStats",
    "collect",
    "current",
    "gauge",
    "incr",
    "merge",
    "snapshot",
    "timer",
    "reset_global",
]


class PerfStats:
    """A bag of counters, accumulated timers, and sampled gauges."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, list[float]] = {}  # name -> [total_s, count]
        self.gauges: dict[str, list[float]] = {}  # name -> [last, max, sum, count]
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + int(n)

    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            slot = self.timers.get(name)
            if slot is None:
                self.timers[name] = [float(seconds), 1]
            else:
                slot[0] += float(seconds)
                slot[1] += 1

    def gauge(self, name: str, value: float) -> None:
        """Record one sample of a time-varying quantity."""
        v = float(value)
        with self._lock:
            slot = self.gauges.get(name)
            if slot is None:
                self.gauges[name] = [v, v, v, 1]
            else:
                slot[0] = v
                slot[1] = max(slot[1], v)
                slot[2] += v
                slot[3] += 1

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.timers.clear()
            self.gauges.clear()

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict from elsewhere into this collector.

        The cross-process aggregation path: worker *processes* cannot
        record into the parent's collector stack (each fork gets copies),
        so they ship ``snapshot()`` dicts home and the parent merges them
        — counters and timer totals add, gauges accumulate their sample
        statistics (``last`` takes the incoming value, ``max`` the
        maximum).  Merging an empty or partial snapshot is a no-op for
        the missing sections.
        """
        with self._lock:
            for name, n in snapshot.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + int(n)
            for name, t in snapshot.get("timers", {}).items():
                slot = self.timers.get(name)
                total, count = float(t["total_s"]), int(t["count"])
                if slot is None:
                    self.timers[name] = [total, count]
                else:
                    slot[0] += total
                    slot[1] += count
            for name, g in snapshot.get("gauges", {}).items():
                count = int(g.get("count", 1))
                total = float(g.get("mean", 0.0)) * count
                slot = self.gauges.get(name)
                if slot is None:
                    self.gauges[name] = [
                        float(g["last"]),
                        float(g["max"]),
                        total,
                        count,
                    ]
                else:
                    slot[0] = float(g["last"])
                    slot[1] = max(slot[1], float(g["max"]))
                    slot[2] += total
                    slot[3] += count

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view (JSON-serializable, safe to keep around)."""
        with self._lock:
            out: dict[str, Any] = {
                "counters": dict(self.counters),
                "timers": {
                    name: {
                        "total_s": total,
                        "count": count,
                        "mean_ms": 1e3 * total / count if count else 0.0,
                    }
                    for name, (total, count) in self.timers.items()
                },
            }
            if self.gauges:
                out["gauges"] = {
                    name: {
                        "last": last,
                        "max": peak,
                        "mean": total / count if count else 0.0,
                        # sample count makes merge() lossless round-trip
                        "count": count,
                    }
                    for name, (last, peak, total, count) in self.gauges.items()
                }
            return out

    def format(self, indent: str = "") -> str:
        """Compact human-readable rendering (one line per entry)."""
        snap = self.snapshot()
        lines = []
        for name in sorted(snap["timers"]):
            t = snap["timers"][name]
            lines.append(
                f"{indent}{name:<28} {t['total_s'] * 1e3:9.1f} ms"
                f"  ({t['count']} calls, {t['mean_ms']:.3f} ms avg)"
            )
        for name in sorted(snap["counters"]):
            lines.append(f"{indent}{name:<28} {snap['counters'][name]:9d}")
        for name in sorted(snap.get("gauges", {})):
            g = snap["gauges"][name]
            lines.append(
                f"{indent}{name:<28} {g['last']:9.3f}"
                f"  (max {g['max']:.3f}, mean {g['mean']:.3f})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<PerfStats {len(self.counters)} counters, "
            f"{len(self.timers)} timers, {len(self.gauges)} gauges>"
        )


#: process-wide collector; always active at the bottom of the stack
GLOBAL = PerfStats()

_stack: list[PerfStats] = [GLOBAL]
#: guards push/pop/iteration of the collector stack (not the collectors
#: themselves — each PerfStats carries its own lock)
_stack_lock = threading.Lock()
#: per-thread timer nesting, so concurrent workers keep separate paths
_local = threading.local()


def _timer_path() -> list[str]:
    path = getattr(_local, "timer_path", None)
    if path is None:
        path = _local.timer_path = []
    return path


def _active() -> tuple[PerfStats, ...]:
    with _stack_lock:
        return tuple(_stack)


def current() -> PerfStats:
    """The innermost active collector."""
    with _stack_lock:
        return _stack[-1]


def reset_global() -> None:
    """Clear the process-wide collector (benchmarks call this between runs)."""
    GLOBAL.reset()


@contextmanager
def collect(stats: PerfStats | None = None) -> Iterator[PerfStats]:
    """Push a collector; events inside the block are recorded into it.

    Outer collectors (including the global one) keep receiving events
    too, so nesting is additive rather than exclusive.  The stack is
    process-global: events recorded by worker threads while the block is
    active land in ``stats`` as well.
    """
    stats = stats if stats is not None else PerfStats()
    with _stack_lock:
        _stack.append(stats)
    try:
        yield stats
    finally:
        with _stack_lock:
            _stack.remove(stats)


def incr(name: str, n: int = 1) -> None:
    """Increment a counter in every active collector."""
    for s in _active():
        s.incr(name, n)


def gauge(name: str, value: float) -> None:
    """Record a gauge sample in every active collector."""
    for s in _active():
        s.gauge(name, value)


def snapshot() -> dict[str, Any]:
    """Snapshot of the innermost active collector (see PerfStats.snapshot)."""
    return current().snapshot()


def merge(snap: dict[str, Any]) -> None:
    """Fold a snapshot dict into every active collector.

    This is how subprocess work reports home: a worker process runs
    under its own ``collect()``, ships ``stats.snapshot()`` back with
    its result, and the parent calls ``perf.merge(snap)`` so the
    counters land in the collectors the parent pushed (and therefore in
    ``TuningResult.perf``).  Without this every counter incremented in a
    forked worker is silently lost.
    """
    for s in _active():
        s.merge(snap)


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Time a block; records under the dotted path of enclosing timers.

    Nesting is tracked per thread: timers opened by concurrent workers
    never appear in each other's dotted paths.
    """
    path = _timer_path()
    path.append(name)
    key = ".".join(path)
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dt = time.perf_counter() - t0
        if path and path[-1] == name:
            path.pop()
        for s in _active():
            s.add_time(key, dt)
