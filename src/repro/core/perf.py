"""Lightweight performance observability for the BO hot path.

The tuning loop is instrumented with *counters* (how many GP fits,
incremental updates, Cholesky retries, acquisition evaluations, kernel
cache hits) and *nested timers* (where the per-iteration wall time goes:
surrogate fit vs acquisition search).  The overhead is a few hundred
nanoseconds per event, so the instrumentation stays on permanently.

Design: a stack of :class:`PerfStats` collectors.  A module-level default
collector always exists (process-wide totals); :meth:`Tuner.tune` pushes
a fresh collector via :func:`collect` so every :class:`TuningResult`
carries the stats of exactly its own run.  Events are recorded into
*all* active collectors, which makes nested tuning runs (ensembles,
GPTuneBand brackets) compose naturally.

Timer names nest by call structure: a ``timer("fit")`` entered while
``timer("surrogate")`` is active records under ``"surrogate.fit"``.

Example
-------
>>> from repro.core import perf
>>> with perf.collect() as stats:
...     with perf.timer("surrogate"):
...         perf.incr("gp_fits")
>>> stats.snapshot()["counters"]["gp_fits"]
1
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["PerfStats", "collect", "current", "incr", "timer", "reset_global"]


class PerfStats:
    """A bag of counters and accumulated timers."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, list[float]] = {}  # name -> [total_s, count]

    # -- recording -----------------------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def add_time(self, name: str, seconds: float) -> None:
        slot = self.timers.get(name)
        if slot is None:
            self.timers[name] = [float(seconds), 1]
        else:
            slot[0] += float(seconds)
            slot[1] += 1

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view (JSON-serializable, safe to keep around)."""
        return {
            "counters": dict(self.counters),
            "timers": {
                name: {
                    "total_s": total,
                    "count": count,
                    "mean_ms": 1e3 * total / count if count else 0.0,
                }
                for name, (total, count) in self.timers.items()
            },
        }

    def format(self, indent: str = "") -> str:
        """Compact human-readable rendering (one line per entry)."""
        lines = []
        for name in sorted(self.timers):
            total, count = self.timers[name]
            lines.append(
                f"{indent}{name:<28} {total * 1e3:9.1f} ms"
                f"  ({count} calls, {1e3 * total / max(count, 1):.3f} ms avg)"
            )
        for name in sorted(self.counters):
            lines.append(f"{indent}{name:<28} {self.counters[name]:9d}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PerfStats {len(self.counters)} counters, {len(self.timers)} timers>"


#: process-wide collector; always active at the bottom of the stack
GLOBAL = PerfStats()

_stack: list[PerfStats] = [GLOBAL]
_timer_path: list[str] = []


def current() -> PerfStats:
    """The innermost active collector."""
    return _stack[-1]


def reset_global() -> None:
    """Clear the process-wide collector (benchmarks call this between runs)."""
    GLOBAL.reset()


@contextmanager
def collect(stats: PerfStats | None = None) -> Iterator[PerfStats]:
    """Push a collector; events inside the block are recorded into it.

    Outer collectors (including the global one) keep receiving events
    too, so nesting is additive rather than exclusive.
    """
    stats = stats if stats is not None else PerfStats()
    _stack.append(stats)
    try:
        yield stats
    finally:
        _stack.remove(stats)


def incr(name: str, n: int = 1) -> None:
    """Increment a counter in every active collector."""
    for s in _stack:
        s.incr(name, n)


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Time a block; records under the dotted path of enclosing timers."""
    _timer_path.append(name)
    key = ".".join(_timer_path)
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dt = time.perf_counter() - t0
        if _timer_path and _timer_path[-1] == name:
            _timer_path.pop()
        for s in _stack:
            s.add_time(key, dt)
