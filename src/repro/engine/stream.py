"""Streaming completed evaluations to the crowd repository.

:class:`CrowdStreamer` is an :data:`~repro.core.tuner.EvaluationCallback`
that posts every evaluation — success *or* failure — to the upload route
of any protocol endpoint the moment it lands, so the shared database
grows while the tuning run is still in flight (the paper's crowd-tuning
mode, where every participant's history becomes everyone else's
transfer-learning source data).

The endpoint is anything with a ``handle(request) -> response`` method:
a bare :class:`~repro.crowd.server.CrowdServer`, the sharded
:class:`~repro.service.router.CrowdRouter`, or — against a flaky
transport — a retrying :class:`~repro.service.client.ServiceClient`,
which turns transport faults into bounded-backoff retries instead of
lost records.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol

from ..core import perf
from ..core.problem import Evaluation

__all__ = ["CrowdStreamer"]


class UploadEndpoint(Protocol):  # pragma: no cover - typing helper
    def handle(self, request: Mapping[str, Any]) -> dict[str, Any]: ...

#: engine bookkeeping copied from evaluation metadata into the record's
#: machine configuration (the crowd record's reproducibility block)
_MACHINE_KEYS = ("worker", "slurm_job_id", "nodelist", "attempts")


class CrowdStreamer:
    """Upload evaluations to a crowd server as they complete.

    Uploads never raise into the tuning loop: a rejected record is
    counted (``crowd_upload_errors``) and remembered in ``errors`` but
    tuning continues — a flaky repository must not kill the run.
    """

    def __init__(
        self,
        server: UploadEndpoint,
        api_key: str,
        problem_name: str,
        *,
        machine_configuration: Mapping[str, Any] | None = None,
        software_configuration: Mapping[str, Any] | None = None,
        accessibility: Mapping[str, Any] | None = None,
    ) -> None:
        self.server = server
        self.api_key = api_key
        self.problem_name = problem_name
        self.machine_configuration = dict(machine_configuration or {})
        self.software_configuration = dict(software_configuration or {})
        self.accessibility = dict(accessibility) if accessibility else None
        self.uploaded_uids: list[str] = []
        self.errors: list[dict[str, Any]] = []

    def __call__(self, evaluation: Evaluation) -> None:
        machine = dict(self.machine_configuration)
        for key in _MACHINE_KEYS:
            if key in evaluation.metadata:
                machine[key] = evaluation.metadata[key]
        request: dict[str, Any] = {
            "route": "upload",
            "api_key": self.api_key,
            "problem_name": self.problem_name,
            "task_parameters": dict(evaluation.task),
            "tuning_parameters": dict(evaluation.config),
            "output": evaluation.output,
            "machine_configuration": machine,
            "software_configuration": dict(self.software_configuration),
        }
        if self.accessibility is not None:
            request["accessibility"] = self.accessibility
        response = self.server.handle(request)
        if response.get("ok"):
            self.uploaded_uids.append(response["uid"])
            perf.incr("crowd_uploads")
        else:
            self.errors.append(response)
            perf.incr("crowd_upload_errors")

    @property
    def n_uploaded(self) -> int:
        return len(self.uploaded_uids)
