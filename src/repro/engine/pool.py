"""A thread pool of simulated evaluation workers.

Each worker models one crowd participant: it holds a node allocation on
the shared :class:`~repro.hpc.scheduler.SlurmSim` cluster for its whole
lifetime, executes one evaluation at a time, and "runs" each evaluation
for a simulated latency derived from the application's own analytic
performance model (the modeled runtime *is* the latency, scaled).
Workers are heterogeneous — each draws a persistent speed factor, like a
crowd of machines of different generations.

The pool is deliberately simple: an input queue, an output queue, and
cooperative sleeping so shutdown and timeouts never block on a stuck
thread.  All fault *policy* (retry, backoff budgets) lives in the
:class:`~repro.engine.tuner.AsyncTuner` event loop; the pool only
executes and reports.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core import perf
from ..core.problem import Evaluation
from ..hpc.scheduler import SlurmJob, SlurmSim
from .faults import FaultSource

__all__ = ["EvalJob", "EvalOutcome", "WorkerPool"]

#: pseudo-config put on the input queue to stop a worker
_SHUTDOWN = object()


@dataclass
class EvalJob:
    """One evaluation request (possibly a retry of an earlier attempt)."""

    job_id: int
    config: dict[str, Any]
    attempt: int = 0
    #: earliest monotonic time the job may start (retry backoff)
    not_before: float = 0.0


@dataclass
class EvalOutcome:
    """What came back from a worker for one :class:`EvalJob`."""

    job: EvalJob
    #: the completed evaluation; ``None`` when the worker crashed/timed out
    evaluation: Evaluation | None
    #: ``None`` on success, else ``"crash"`` / ``"timeout"`` / ``"error: ..."``
    error: str | None
    worker_id: int
    #: simulated execution latency (seconds) of this attempt
    latency_s: float
    #: engine bookkeeping merged into the evaluation's metadata
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


class WorkerPool:
    """Threaded evaluation workers with simulated latencies and faults.

    Parameters
    ----------
    evaluate:
        ``evaluate(config) -> Evaluation``; must not raise for ordinary
        objective failures (``TuningProblem.evaluate`` already converts
        those into failed evaluations).
    n_workers:
        Number of concurrent workers.
    latency_fn:
        ``latency_fn(evaluation) -> seconds`` of simulated execution
        time, typically proportional to the application's modeled
        runtime.  ``None`` disables latency simulation (unit tests).
    scheduler:
        Optional :class:`SlurmSim`; each worker sallocs
        ``nodes_per_worker`` nodes for its lifetime, and the allocation
        shape is reported in every outcome's metadata (the crowd
        record's reproducibility block).
    heterogeneity:
        Log-normal sigma of per-worker speed factors (0 = identical
        workers).
    fault_injector:
        Optional :class:`~repro.engine.faults.FaultInjector`-like source
        of simulated worker crashes.
    timeout_s:
        Per-evaluation ceiling on simulated latency; slower runs are
        reported as ``"timeout"`` after ``timeout_s`` of wall time.
    """

    def __init__(
        self,
        evaluate: Callable[[dict[str, Any]], Evaluation],
        n_workers: int,
        *,
        latency_fn: Callable[[Evaluation], float] | None = None,
        scheduler: SlurmSim | None = None,
        nodes_per_worker: int = 1,
        heterogeneity: float = 0.0,
        fault_injector: FaultSource | None = None,
        timeout_s: float | None = None,
        seed: int | None = None,
        tick_s: float = 0.002,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self._evaluate = evaluate
        self.n_workers = int(n_workers)
        self._latency_fn = latency_fn
        self._scheduler = scheduler
        self._nodes_per_worker = int(nodes_per_worker)
        self._fault_injector = fault_injector
        self._timeout_s = timeout_s
        self._tick_s = float(tick_s)
        rng = np.random.default_rng(seed)
        sigma = float(heterogeneity)
        self._speeds = [
            float(np.exp(rng.normal(0.0, sigma))) if sigma > 0 else 1.0
            for _ in range(self.n_workers)
        ]
        self._in: queue.Queue = queue.Queue()
        self._out: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._allocations: list[SlurmJob | None] = [None] * self.n_workers
        self._busy_s = [0.0] * self.n_workers
        self._lock = threading.Lock()
        self._next_job_id = 0
        self._inflight = 0
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "WorkerPool":
        if self._started:
            return self
        if self._scheduler is not None:
            for wid in range(self.n_workers):
                # raises AllocationError when the cluster is too small
                self._allocations[wid] = self._scheduler.salloc(self._nodes_per_worker)
        for wid in range(self.n_workers):
            t = threading.Thread(
                target=self._worker, args=(wid,), name=f"eval-worker-{wid}", daemon=True
            )
            t.start()
            self._threads.append(t)
        self._started = True
        return self

    def close(self) -> None:
        if not self._started:
            return
        self._stop.set()
        for _ in self._threads:
            self._in.put(_SHUTDOWN)
        for t in self._threads:
            t.join(timeout=5.0)
        if self._scheduler is not None:
            for wid, alloc in enumerate(self._allocations):
                if alloc is not None:
                    self._scheduler.release(alloc)
                    self._allocations[wid] = None
        self._started = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission / collection -------------------------------------------
    def submit(self, config: dict[str, Any]) -> int:
        """Enqueue a fresh evaluation; returns its job id."""
        with self._lock:
            job_id = self._next_job_id
            self._next_job_id += 1
            self._inflight += 1
        self._in.put(EvalJob(job_id, dict(config)))
        perf.gauge("engine_queue_depth", self._in.qsize())
        return job_id

    def resubmit(self, job: EvalJob, delay_s: float = 0.0) -> None:
        """Re-enqueue a failed job for another attempt after ``delay_s``."""
        with self._lock:
            self._inflight += 1
        self._in.put(
            EvalJob(
                job.job_id,
                job.config,
                attempt=job.attempt + 1,
                not_before=time.monotonic() + max(delay_s, 0.0),
            )
        )
        perf.gauge("engine_queue_depth", self._in.qsize())

    def get(self, timeout: float | None = None) -> EvalOutcome:
        """Next completed outcome (blocks; raises ``queue.Empty`` on timeout)."""
        outcome = self._out.get(timeout=timeout)
        with self._lock:
            self._inflight -= 1
        return outcome

    # -- introspection ------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Jobs enqueued but not yet picked up by a worker."""
        return self._in.qsize()

    @property
    def inflight(self) -> int:
        """Jobs submitted whose outcome has not been collected yet."""
        with self._lock:
            return self._inflight

    @property
    def busy_s(self) -> float:
        """Total worker-seconds spent executing evaluations."""
        with self._lock:
            return float(sum(self._busy_s))

    def utilization(self, wall_s: float) -> float:
        """Fraction of available worker time spent busy over ``wall_s``."""
        if wall_s <= 0:
            return 0.0
        return min(self.busy_s / (self.n_workers * wall_s), 1.0)

    def allocation(self, worker_id: int) -> SlurmJob | None:
        return self._allocations[worker_id]

    # -- worker loop --------------------------------------------------------
    def _sleep(self, seconds: float) -> None:
        """Cooperative sleep: wakes early when the pool is closing."""
        deadline = time.monotonic() + seconds
        while not self._stop.is_set():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(self._tick_s, remaining))

    def _worker(self, wid: int) -> None:
        speed = self._speeds[wid]
        alloc = self._allocations[wid]
        slurm_meta: dict[str, Any] = {}
        if alloc is not None:
            slurm_meta = {
                "slurm_job_id": alloc.job_id,
                "nodelist": alloc.environment()["SLURM_JOB_NODELIST"],
            }
        while not self._stop.is_set():
            try:
                job = self._in.get(timeout=0.05)
            except queue.Empty:
                continue
            if job is _SHUTDOWN:
                break
            t0 = time.perf_counter()
            wait = job.not_before - time.monotonic()
            if wait > 0:
                self._sleep(wait)
            evaluation: Evaluation | None
            error: str | None = None
            latency = 0.0
            try:
                evaluation = self._evaluate(job.config)
                latency = (
                    max(float(self._latency_fn(evaluation)), 0.0) * speed
                    if self._latency_fn is not None
                    else 0.0
                )
                crash = self._fault_injector is not None and (
                    self._fault_injector.should_crash(wid, job.job_id, job.attempt)
                )
                if crash:
                    # the worker dies partway through the run
                    self._sleep(0.5 * latency)
                    evaluation, error = None, "crash"
                    perf.incr("engine_worker_crashes")
                elif self._timeout_s is not None and latency > self._timeout_s:
                    self._sleep(self._timeout_s)
                    evaluation, error = None, "timeout"
                    perf.incr("engine_timeouts")
                else:
                    self._sleep(latency)
            except Exception as exc:  # defensive: evaluate() should not raise
                evaluation, error = None, f"error: {exc!r}"
            busy = time.perf_counter() - t0
            with self._lock:
                self._busy_s[wid] += busy
            perf.incr("engine_evaluations")
            self._out.put(
                EvalOutcome(
                    job=job,
                    evaluation=evaluation,
                    error=error,
                    worker_id=wid,
                    latency_s=latency,
                    metadata={
                        "worker": wid,
                        "attempt": job.attempt,
                        "latency_s": round(latency, 6),
                        **slurm_meta,
                    },
                )
            )
