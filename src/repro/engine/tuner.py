"""Asynchronous batched Bayesian-optimization tuning.

:class:`AsyncTuner` keeps a :class:`~repro.engine.pool.WorkerPool`
saturated: whenever workers are idle it proposes new configurations —
conditioned on *fantasy observations* at every evaluation still in
flight (:func:`repro.core.optimizer.propose_batch`) so concurrent
proposals stay diverse — and folds results into the surrogate in
completion order through the incremental ``GaussianProcess.update``
path.  Crashed or timed-out evaluations are retried with exponential
backoff up to the retry budget, then recorded as *failures* in the
history, where they feed the KNN feasibility model and (via callbacks
such as :class:`~repro.engine.stream.CrowdStreamer`) the crowd
repository — exactly how the paper's database treats bad
configurations.

With one worker and no faults the engine degenerates to the sequential
loop: propose, wait, fold, repeat — and reproduces
:class:`~repro.core.tuner.Tuner` trajectories bit-for-bit (a regression
test pins this), so every speedup measured by
``benchmarks/bench_async.py`` is pure overlap, not a different
algorithm.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..core import perf
from ..core.history import History
from ..core.optimizer import LIE_STRATEGIES, propose_batch
from ..core.problem import Evaluation, TuningProblem
from ..core.tuner import EvaluationCallback, Tuner, TunerOptions, TuningResult
from ..hpc.scheduler import SlurmSim
from .faults import FaultInjector, FaultSource, RetryPolicy
from .pool import WorkerPool

__all__ = ["AsyncTuner", "EngineOptions"]


@dataclass
class EngineOptions:
    """Controls for the asynchronous engine.

    Latency simulation maps the application's *modeled* runtime onto
    wall time: an evaluation whose objective is ``y`` occupies its
    worker for ``base_latency_s + latency_scale * max(y, 0)`` seconds
    (failures cost ``failure_latency_s``).  With the default scales of 0
    the engine runs as fast as the objective computes — unit tests stay
    instant, benchmarks dial in realistic latencies.
    """

    n_workers: int = 4
    #: max proposals per refill round (the ``q`` of batch proposal)
    batch: int = 1
    #: fantasy strategy for in-flight evaluations (see LIE_STRATEGIES)
    lie: str = "cl-min"
    #: simulated seconds per unit of objective output
    latency_scale: float = 0.0
    #: fixed simulated seconds per evaluation
    base_latency_s: float = 0.0
    #: simulated seconds charged to failed evaluations
    failure_latency_s: float = 0.0
    #: log-normal sigma of per-worker speed factors
    heterogeneity: float = 0.0
    #: per-evaluation simulated-latency ceiling (None = no timeout)
    timeout_s: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: probability a worker dies mid-evaluation (per attempt)
    fault_rate: float = 0.0
    fault_seed: int = 0
    #: nodes each worker sallocs from the shared SlurmSim (when given)
    nodes_per_worker: int = 1

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.lie not in LIE_STRATEGIES:
            raise ValueError(f"lie must be one of {LIE_STRATEGIES}, got {self.lie!r}")


class AsyncTuner(Tuner):
    """Asynchronous batched NoTLA tuner over a simulated worker pool.

    Parameters
    ----------
    problem:
        The tuning problem to minimize.
    options:
        BO-loop controls (shared with the sequential tuner).
    engine:
        Engine controls: workers, batch size, latencies, faults.
    callbacks:
        Called with every completed :class:`Evaluation` *in completion
        order* from the event-loop thread (thread-safe to mutate local
        state; the crowd streamer uploads records here).
    scheduler:
        Optional shared :class:`SlurmSim` the workers allocate from.
    fault_injector:
        Overrides the ``engine.fault_rate``-derived injector (tests use
        :class:`~repro.engine.faults.ScriptedFaults`).
    """

    name = "AsyncNoTLA"

    def __init__(
        self,
        problem: TuningProblem,
        options: TunerOptions | None = None,
        engine: EngineOptions | None = None,
        callbacks: list[EvaluationCallback] | None = None,
        *,
        scheduler: SlurmSim | None = None,
        fault_injector: FaultSource | None = None,
    ) -> None:
        super().__init__(problem, options, callbacks)
        self.engine = engine or EngineOptions()
        self.scheduler = scheduler
        if fault_injector is None and self.engine.fault_rate > 0.0:
            fault_injector = FaultInjector(self.engine.fault_rate, self.engine.fault_seed)
        self.fault_injector = fault_injector

    # -- latency model -----------------------------------------------------
    def _latency_fn(self):
        eng = self.engine
        if eng.latency_scale <= 0 and eng.base_latency_s <= 0 and (
            eng.failure_latency_s <= 0
        ):
            return None

        def latency(evaluation: Evaluation) -> float:
            if evaluation.failed:
                return eng.failure_latency_s
            return eng.base_latency_s + eng.latency_scale * max(evaluation.output, 0.0)

        return latency

    # -- main loop ---------------------------------------------------------
    def tune(
        self,
        task: Mapping[str, Any],
        n_samples: int,
        *,
        seed: int | None = None,
        history: History | None = None,
    ) -> TuningResult:
        """Run ``n_samples`` evaluations on ``task`` across the pool.

        Budget semantics match the sequential tuner: every *resolved*
        evaluation (success, objective failure, or a crash/timeout that
        exhausted its retries) consumes one sample; retries of the same
        job do not.  An existing ``history`` continues a previous run —
        its evaluations feed the surrogate but not the budget.
        """
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        self.problem.input_space.validate(task)
        rng = np.random.default_rng(seed)
        hist = history if history is not None else History(task, self.problem.parameter_space)
        eng = self.engine

        evaluate = lambda cfg: self.problem.evaluate(task, cfg)
        pool = WorkerPool(
            evaluate,
            eng.n_workers,
            latency_fn=self._latency_fn(),
            scheduler=self.scheduler,
            nodes_per_worker=eng.nodes_per_worker,
            heterogeneity=eng.heterogeneity,
            fault_injector=self.fault_injector,
            timeout_s=eng.timeout_s,
            seed=seed,
        )
        pending: dict[int, dict[str, Any]] = {}  # job_id -> config
        completed = 0
        t0 = time.perf_counter()
        with perf.collect() as stats, pool:
            # same scoping as the sequential tuner: preparation counters
            # (TLA source fits, store hits) belong to this run's .perf
            with perf.timer("prepare"):
                self._prepare(task, rng)

            def refill() -> None:
                while (
                    completed + len(pending) < n_samples
                    and pool.inflight < eng.n_workers
                ):
                    k = min(
                        eng.batch,
                        eng.n_workers - pool.inflight,
                        n_samples - completed - len(pending),
                    )
                    with perf.timer("propose"):
                        configs = self._propose_batch(hist, rng, k, list(pending.values()))
                    if not configs:
                        return
                    for cfg in configs:
                        pending[pool.submit(cfg)] = cfg
                    perf.gauge("engine_pending_fantasies", len(pending))

            refill()
            while completed < n_samples:
                try:
                    outcome = pool.get(timeout=60.0)
                except queue.Empty:  # pragma: no cover - watchdog
                    raise RuntimeError(
                        f"engine stalled: {len(pending)} evaluations pending, "
                        f"{completed}/{n_samples} completed"
                    )
                job = outcome.job
                if outcome.error in ("crash", "timeout") and eng.retry.allows(job.attempt):
                    perf.incr("engine_retries")
                    pool.resubmit(job, delay_s=eng.retry.backoff_s(job.attempt))
                    continue
                evaluation = outcome.evaluation
                if evaluation is None:
                    # retries exhausted (or a hard error): a crowd-style
                    # failure record — consumes budget, feeds feasibility
                    evaluation = Evaluation(
                        dict(task),
                        dict(job.config),
                        None,
                        {"failure": outcome.error or "unknown"},
                    )
                evaluation.metadata.update(outcome.metadata)
                evaluation.metadata["attempts"] = job.attempt + 1
                pending.pop(job.job_id, None)
                hist.append(evaluation)
                completed += 1
                for cb in self.callbacks:
                    cb(evaluation)
                refill()
            wall = time.perf_counter() - t0
            perf.gauge("engine_worker_utilization", pool.utilization(wall))
            perf.gauge("engine_wall_s", wall)
        return TuningResult(
            problem_name=self.problem.name,
            tuner_name=self.name,
            task=dict(task),
            history=hist,
            seed=seed,
            perf=stats.snapshot(),
        )

    # -- proposal ----------------------------------------------------------
    def _propose_batch(
        self,
        hist: History,
        rng: np.random.Generator,
        k: int,
        pending_configs: list[dict[str, Any]],
    ) -> list[dict[str, Any]]:
        """``k`` fresh configurations, fantasy-conditioned on ``pending``."""
        space = self.problem.parameter_space
        sampler = self.options.make_sampler()
        evaluated = hist.configs() + pending_configs
        if hist.n_successes < self.options.n_initial:
            out = []
            for _ in range(k):
                cfg = self._initial_sample(sampler, evaluated + [], rng)
                out.append(cfg)
                evaluated.append(cfg)
            return out
        with perf.timer("surrogate"):
            predict = self._model(hist, rng)
        if predict is None:  # modeling failed: random fallback
            out = []
            for _ in range(k):
                cfg = self._initial_sample(sampler, evaluated, rng)
                out.append(cfg)
                evaluated.append(cfg)
            return out
        X_obs, y_obs = hist.arrays()
        X_failed = hist.failed_array()
        p_feasible = self._feasibility_model(X_obs, X_failed)
        gp = self._gp if (
            self._gp is not None and getattr(predict, "__self__", None) is self._gp
        ) else None
        X_pending = (
            space.to_unit_array(pending_configs) if pending_configs else None
        )
        with perf.timer("search"):
            return propose_batch(
                predict,
                space,
                self.options.acquisition,
                rng,
                q=k,
                gp=gp,
                X_obs=X_obs,
                y_obs=y_obs,
                X_pending=X_pending,
                evaluated=evaluated,
                X_failed=X_failed,
                p_feasible=p_feasible,
                feasible=self._feasible,
                lie=self.engine.lie,
                options=self.options.search,
            )

    def _initial_sample(self, sampler, evaluated, rng) -> dict[str, Any]:
        """A fresh random configuration avoiding all known/pending ones."""
        config = None
        for _ in range(50):
            batch = sampler.sample(self.problem.parameter_space, 1, rng, exclude=evaluated)
            config = batch[0] if batch else self.problem.parameter_space.sample(rng)
            if self._feasible(config):
                return config
        return config
