"""Asynchronous batched evaluation engine (system S12).

The sequential tuner evaluates one configuration at a time; real crowd
tuning does not.  This package runs the same Bayesian-optimization loop
against a pool of simulated workers, keeping every worker busy with
fantasy-conditioned batch proposals, surviving worker crashes and
timeouts through bounded retry, and streaming each completed evaluation
to the crowd repository the moment it lands.

Layering: :mod:`repro.engine` sits above :mod:`repro.core` (surrogates,
acquisition, batch proposal), :mod:`repro.hpc` (the simulated cluster
workers allocate from), and :mod:`repro.crowd` (the upload route the
streamer posts to).  Nothing in those packages imports the engine.
"""

from .faults import FaultInjector, RetryPolicy, ScriptedFaults, WorkerCrash
from .pool import EvalJob, EvalOutcome, WorkerPool
from .stream import CrowdStreamer
from .tuner import AsyncTuner, EngineOptions

__all__ = [
    "AsyncTuner",
    "CrowdStreamer",
    "EngineOptions",
    "EvalJob",
    "EvalOutcome",
    "FaultInjector",
    "RetryPolicy",
    "ScriptedFaults",
    "WorkerCrash",
    "WorkerPool",
]
