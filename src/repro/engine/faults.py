"""Fault injection and retry policy for the asynchronous engine.

Real crowd tuning loses evaluations: nodes die, jobs hit their wall
time, file systems hiccup.  The engine simulates those failure modes so
the recovery paths (bounded retry with exponential backoff, failure
records feeding the feasibility model) are continuously exercised.

Determinism contract: :class:`FaultInjector` decides crashes by hashing
``(seed, job_id, attempt)`` — *never* from wall-clock or thread timing —
so a run with a fixed seed injects exactly the same faults regardless of
worker interleaving.  :class:`ScriptedFaults` pins specific
``(job_id, attempt)`` pairs for regression tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Protocol

__all__ = ["FaultInjector", "RetryPolicy", "ScriptedFaults", "WorkerCrash"]


class WorkerCrash(RuntimeError):
    """A simulated worker death mid-evaluation."""


class FaultSource(Protocol):  # pragma: no cover - typing helper
    def should_crash(self, worker_id: int, job_id: int, attempt: int) -> bool: ...


class FaultInjector:
    """Pseudo-random but timing-independent worker crashes.

    ``rate`` is the per-attempt crash probability.  The decision for a
    given ``(job_id, attempt)`` is a pure function of the seed, so the
    same tuning run injects the same faults no matter which worker picks
    the job up or how threads interleave.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"crash rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)

    def should_crash(self, worker_id: int, job_id: int, attempt: int) -> bool:
        if self.rate <= 0.0:
            return False
        blob = f"{self.seed}:{job_id}:{attempt}".encode()
        digest = hashlib.sha256(blob).digest()
        draw = int.from_bytes(digest[:8], "little") / 2**64
        return draw < self.rate


class ScriptedFaults:
    """Crash exactly the scripted ``(job_id, attempt)`` pairs (tests)."""

    def __init__(self, crashes: Iterable[tuple[int, int]]) -> None:
        self.crashes = {(int(j), int(a)) for j, a in crashes}
        self.triggered: list[tuple[int, int]] = []

    def should_crash(self, worker_id: int, job_id: int, attempt: int) -> bool:
        if (job_id, attempt) in self.crashes:
            self.triggered.append((job_id, attempt))
            return True
        return False


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff.

    A crashed or timed-out evaluation is retried up to ``max_retries``
    times; retry ``k`` waits ``base_s * factor**k`` (capped at
    ``cap_s``) before re-executing.  The backoff is charged to the
    worker that picks the retry up, not to the event loop, so other
    in-flight evaluations keep completing during the wait.
    """

    max_retries: int = 2
    base_s: float = 0.01
    factor: float = 2.0
    cap_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_s < 0 or self.cap_s < 0:
            raise ValueError("backoff durations must be >= 0")

    def allows(self, attempt: int) -> bool:
        """Whether attempt index ``attempt`` (0-based) may be retried."""
        return attempt < self.max_retries

    def backoff_s(self, attempt: int) -> float:
        """Delay before re-running a job that failed on ``attempt``."""
        return min(self.cap_s, self.base_s * self.factor**attempt)
