"""Command-line interface (system S30).

Subcommands mirror the workflows of the paper:

* ``gptunecrowd tune`` — tune an application (NoTLA or a TLA strategy),
* ``gptunecrowd sensitivity`` — collect samples and print a Table IV/V-
  style Sobol' report,
* ``gptunecrowd pool`` — print the TLA algorithm pool (Table I),
* ``gptunecrowd apps`` — list available application models and machines,
* ``gptunecrowd variability`` — repeat-measurement noise diagnosis (the
  paper's future-work feature),
* ``gptunecrowd bandit`` — GPTuneBand-style multi-fidelity tuning,
* ``gptunecrowd service`` — demo the sharded, durable crowd service.

Applications are addressed by name; machines by preset key and node
count, e.g.::

    gptunecrowd tune --app pdgeqrf --machine cori-haswell --nodes 8 \
        --samples 10 --tla ensemble-proposed
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

import numpy as np

from .apps import NIMROD, PDGEQRF, BraninFunction, DemoFunction, HypreAMG, SuperLUDist2D
from .apps.base import HPCApplication
from .core import TaskData, Tuner, TunerOptions
from .hpc import MACHINE_PRESETS, get_machine
from .sensitivity import SensitivityAnalyzer
from .tla import (
    STRATEGY_REGISTRY,
    GPTuneBand,
    MultiFidelityObjective,
    TransferTuner,
    get_strategy,
    pool_table,
)

__all__ = ["main", "build_app"]

_APPS = {
    "demo": DemoFunction,
    "branin": BraninFunction,
    "pdgeqrf": PDGEQRF,
    "superlu": SuperLUDist2D,
    "hypre": HypreAMG,
    "nimrod": NIMROD,
}

_MACHINE_APPS = {"pdgeqrf", "superlu", "hypre", "nimrod"}


def build_app(name: str, machine_key: str | None, nodes: int) -> HPCApplication:
    """Instantiate an application, with a machine when it needs one."""
    try:
        cls = _APPS[name]
    except KeyError:
        raise SystemExit(f"unknown app {name!r}; choose from {sorted(_APPS)}")
    if name in _MACHINE_APPS:
        machine = get_machine(machine_key or "cori-haswell", nodes)
        return cls(machine)
    return cls()


def _parse_task(app: HPCApplication, text: str | None) -> dict[str, Any]:
    if text is None:
        return app.default_task()
    task = json.loads(text)
    app.input_space().validate(task)
    return task


def _cmd_tune(args: argparse.Namespace) -> int:
    app = build_app(args.app, args.machine, args.nodes)
    problem = app.make_problem(run=args.seed)
    task = _parse_task(app, args.task)
    options = TunerOptions(
        n_initial=args.n_initial,
        surrogate=args.surrogate,
        n_dense_max=args.n_dense_max,
        n_inducing=args.n_inducing,
        leaf_size=args.leaf_size,
    )

    if args.workers > 1 and args.tla:
        raise SystemExit("--workers > 1 supports NoTLA only (drop --tla)")

    if args.tla:
        strategy = get_strategy(args.tla)
        rng = np.random.default_rng(args.seed + 1000)
        space = problem.parameter_space
        sources = []
        src_task = json.loads(args.source_task) if args.source_task else task
        configs, ys = [], []
        while len(ys) < args.source_samples:
            c = space.sample(rng)
            y = app.objective(src_task, c, run=9999)
            if y is not None:
                configs.append(c)
                ys.append(y)
        sources.append(
            TaskData(src_task, space.to_unit_array(configs), np.array(ys), "cli-source")
        )
        tuner: Tuner = TransferTuner(problem, strategy, sources, options=options)
    elif args.workers > 1 or args.batch > 1:
        from .engine import AsyncTuner, EngineOptions

        tuner = AsyncTuner(
            problem,
            options,
            EngineOptions(n_workers=args.workers, batch=args.batch, lie=args.lie),
        )
    else:
        tuner = Tuner(problem, options=options)

    result = tuner.tune(task, args.samples, seed=args.seed)
    print(json.dumps(result.summary(), indent=2, default=str))
    print("best-so-far:", [round(v, 4) for v in result.best_so_far()])
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    app = build_app(args.app, args.machine, args.nodes)
    task = _parse_task(app, args.task)
    space = app.parameter_space()
    rng = np.random.default_rng(args.seed)
    configs, ys = [], []
    while len(ys) < args.samples:
        c = space.sample(rng)
        y = app.objective(task, c, run=args.seed)
        if y is not None:
            configs.append(c)
            ys.append(y)
    data = TaskData(task, space.to_unit_array(configs), np.array(ys))
    report = SensitivityAnalyzer(space).analyze(
        data, n_base=args.n_base, seed=args.seed
    )
    print(f"# Sobol sensitivity of {app.name} on task {task}")
    print(f"# {data.n} samples, {args.n_base} base points")
    print(report.table())
    keep = report.sensitive_parameters()
    print(f"\nsensitive parameters (S1>=0.05 or ST>=0.2): {keep}")
    return 0


def _cmd_variability(args: argparse.Namespace) -> int:
    from .crowd import PerformanceRecord
    from .crowd.analytics import detect_outliers, variability_report

    app = build_app(args.app, args.machine, args.nodes)
    task = _parse_task(app, args.task)
    space = app.parameter_space()
    rng = np.random.default_rng(args.seed)
    # measure a handful of configurations several times each
    records = []
    configs = [space.sample(rng) for _ in range(args.configs)]
    for run in range(args.repeats):
        for cfg in configs:
            y = app.objective(task, cfg, run=run)
            records.append(
                PerformanceRecord(
                    problem_name=app.name,
                    task_parameters=dict(task),
                    tuning_parameters=cfg,
                    output=y,
                )
            )
    report = variability_report(records, problem_name=app.name)
    print(f"# variability of {app.name} on {task} "
          f"({args.configs} configs x {args.repeats} repeats)")
    print(report.table())
    print(
        f"\npooled relative std: {report.pooled_relative_std:.4f} "
        "(suggested tuner noise sigma)"
    )
    outliers = detect_outliers(records)
    print(f"outliers (|modified z| > 3.5): {len(outliers)}")
    return 0


def _cmd_bandit(args: argparse.Namespace) -> int:
    app = build_app(args.app, args.machine, args.nodes)
    task = _parse_task(app, args.task)
    objective = MultiFidelityObjective(
        fn=lambda t, c, f: app.fidelity_objective(t, c, f, run=args.seed),
        space=app.parameter_space(),
        task=task,
    )
    tuner = GPTuneBand(
        objective, bracket_size=args.bracket_size, n_rungs=args.rungs
    )
    result = tuner.tune(args.budget, seed=args.seed)
    screened = len({tuple(sorted(c.items())) for c, _, _ in result.evaluations})
    print(json.dumps(
        {
            "app": app.name,
            "task": task,
            "budget": args.budget,
            "cost_spent": round(result.cost_spent, 3),
            "configs_screened": screened,
            "best_output": result.best_output,
            "best_config": result.best_config,
        },
        indent=2,
        default=str,
    ))
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    """Demo a sharded crowd service: upload, query, survive a crash."""
    from .service import RegistryOptions, RouterOptions, build_service

    app = build_app(args.app, args.machine, args.nodes)
    task = _parse_task(app, args.task)
    space = app.parameter_space()
    svc = build_service(
        args.shards,
        data_dir=args.data_dir,
        options=RouterOptions(
            replication=args.replication,
            write_quorum=args.write_quorum,
            read_quorum=args.read_quorum,
        ),
        registry=RegistryOptions() if args.registry else None,
    )
    try:
        _, key = svc.register_user("cli", "cli@gptunecrowd.local")
        rng = np.random.default_rng(args.seed)
        uploaded = 0
        while uploaded < args.uploads:
            cfg = space.sample(rng)
            response = svc.client.handle(
                {
                    "route": "upload",
                    "api_key": key,
                    "problem_name": app.name,
                    "task_parameters": dict(task),
                    "tuning_parameters": cfg,
                    "output": app.objective(task, cfg, run=args.seed),
                }
            )
            if response.get("ok"):
                uploaded += 1
        per_shard = {name: shard.count() for name, shard in svc.shards.items()}
        print(f"service: {args.shards} shard(s), replication {args.replication}")
        print(f"uploaded {uploaded} records -> stored copies per shard: {per_shard}")

        query = {"route": "query", "api_key": key, "problem_name": app.name}
        records = svc.client.handle(query)["records"]
        print(f"fan-out query: {len(records)} distinct records")
        if args.shards > 1:
            # kill the most loaded shard — the worst case for reads
            victim = max(svc.shards, key=lambda n: svc.shards[n].count())
            svc.kill_shard(victim)
            survived = svc.client.handle(query)["records"]
            print(f"after killing {victim}: {len(survived)} records still served")
            # writes during the outage: at W=1 they ack degraded and the
            # victim's copy is hinted; at W>1 they may be quorum-rejected
            acked = rejected = 0
            for _ in range(4):
                cfg = space.sample(rng)
                response = svc.client.handle(
                    {
                        "route": "upload",
                        "api_key": key,
                        "problem_name": app.name,
                        "task_parameters": dict(task),
                        "tuning_parameters": cfg,
                        "output": app.objective(task, cfg, run=args.seed),
                    }
                )
                if response.get("ok"):
                    uploaded += 1
                    acked += 1
                else:
                    rejected += 1
            print(
                f"4 writes during the outage: {acked} acked, "
                f"{rejected} quorum-rejected, "
                f"{svc.router.hints_pending(victim)} hint(s) buffered for {victim}"
            )
            svc.revive_shard(victim)  # hinted handoff replays automatically
            stats = svc.router.anti_entropy_round()
            print(
                f"revived {victim}: hints pending now "
                f"{svc.router.hints_pending(victim)}, anti-entropy healed "
                f"{stats['healed']} record(s) across {stats['buckets']} bucket(s)"
            )

        board = svc.client.handle(
            {"route": "leaderboard", "api_key": key, "problem_name": app.name}
        )
        for row in board.get("rows", []):
            print(
                f"best {row['best_output']:.5g} by {row['best_owner']} "
                f"({row['n_samples']} samples, {row['n_failures']} failures)"
            )
        if args.registry:
            # server-side prediction: register the space, then ask the
            # frozen model — no GP is fit on the client, and repeated
            # calls are served from the registry without refitting
            svc.client.handle(
                {
                    "route": "register_problem",
                    "api_key": key,
                    "problem_name": app.name,
                    "problem_space": {"parameter_space": space.to_list()},
                }
            )
            probe = [space.sample(rng) for _ in range(4)]
            pred = svc.client.handle(
                {
                    "route": "predict",
                    "api_key": key,
                    "problem_name": app.name,
                    "task_parameters": dict(task),
                    "configurations": probe,
                }
            )
            if pred.get("ok"):
                best = min(pred["mean"])
                print(
                    f"registry predict: {len(probe)} configs served from a "
                    f"frozen model of {pred['n_samples']} samples "
                    f"(data_version {pred['data_version']}), "
                    f"best predicted output {best:.5g}"
                )
            else:
                print(f"registry predict unavailable: {pred.get('message')}")
        if args.data_dir:
            svc.snapshot_all()
            print(f"snapshots + WALs persisted under {args.data_dir}")
    finally:
        svc.close()
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    """Demo the multi-process tuning fabric feeding a crowd service."""
    from .fabric import DurableJobQueue, FabricOptions, FabricTuner
    from .service import build_service

    app = build_app(args.app, args.machine, args.nodes)
    problem = app.make_problem(run=args.seed)
    task = _parse_task(app, args.task)
    options = TunerOptions(n_initial=args.n_initial)
    fabric = FabricOptions(
        n_procs=args.procs,
        batch=min(args.procs, 4),
        base_latency_s=args.latency_s,
        lease_s=args.lease_s,
        data_dir=args.data_dir,
    )

    killed: list[int] = []

    def on_progress(completed: int, coordinator) -> None:
        if args.kill_after and completed == args.kill_after and not killed:
            busy = coordinator.busy_workers()
            if busy:
                coordinator.kill_worker(busy[0])
                killed.append(busy[0])
                print(f"[fabric] killed worker {busy[0]} "
                      f"after {completed} evaluations")

    with build_service(args.shards) as svc:
        _, key = svc.register_user("fabric-cli", "fabric@gptunecrowd.local")
        tuner = FabricTuner(
            problem,
            options,
            fabric,
            crowd=svc.client,
            api_key=key,
            machine_configuration={"machine": args.machine or "local"},
            on_progress=on_progress,
        )
        import time

        t0 = time.perf_counter()
        result = tuner.tune(task, args.samples, seed=args.seed)
        wall = time.perf_counter() - t0
        gauges = (result.perf or {}).get("gauges", {})
        print(f"fabric: {args.procs} process(es), {args.samples} evaluations "
              f"in {wall:.2f}s")
        print(f"best output: {result.best_output:.6g}  "
              f"best config: {result.best_config}")
        util = gauges.get("fabric_worker_utilization", {}).get("last", 0.0)
        print(f"worker utilization: {util:.0%}  "
              f"re-dispatches: {tuner._last_redispatches}  "
              f"workers killed: {len(killed)}")
        print(f"streamed to crowd service: {tuner.streamer.n_uploaded} "
              f"records across {args.shards} shard(s) "
              f"({len(tuner.streamer.errors)} errors)")
        if args.data_dir:
            queue = DurableJobQueue(args.data_dir)
            print(f"durable queue: {queue.n_done}/{queue.n_jobs} jobs "
                  f"completed on disk under {args.data_dir}")
            queue.close()
    return 0


def _cmd_pool(args: argparse.Namespace) -> int:
    del args
    rows = pool_table()
    width = max(len(r["name"]) for r in rows)
    for r in rows:
        print(f"{r['name']:<{width}}  [{r['first_autotuner']:<11}]  {r['description']}")
    return 0


def _cmd_apps(args: argparse.Namespace) -> int:
    del args
    print("applications:", ", ".join(sorted(_APPS)))
    print("machines:    ", ", ".join(sorted(MACHINE_PRESETS)))
    print("tla:         ", ", ".join(sorted(STRATEGY_REGISTRY)))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gptunecrowd", description="GPTuneCrowd reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tune = sub.add_parser("tune", help="tune an application")
    p_tune.add_argument("--app", required=True, choices=sorted(_APPS))
    p_tune.add_argument("--machine", choices=sorted(MACHINE_PRESETS))
    p_tune.add_argument("--nodes", type=int, default=8)
    p_tune.add_argument("--task", help="task parameters as JSON")
    p_tune.add_argument("--samples", type=int, default=10)
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.add_argument("--n-initial", type=int, default=2)
    p_tune.add_argument("--workers", type=int, default=1,
                        help="evaluation workers (>1 uses the async engine)")
    p_tune.add_argument("--batch", type=int, default=1,
                        help="configurations proposed per batch (async engine)")
    p_tune.add_argument("--lie", default="cl-min",
                        choices=["cl-min", "cl-mean", "cl-max", "kb"],
                        help="fantasy strategy for in-flight evaluations")
    p_tune.add_argument("--surrogate", default="auto",
                        choices=["auto", "dense", "sparse", "partitioned"],
                        help="surrogate policy: auto switches dense->sparse "
                             "past --n-dense-max observations")
    p_tune.add_argument("--n-dense-max", type=int, default=1000,
                        help="history size beyond which auto goes sparse")
    p_tune.add_argument("--n-inducing", type=int, default=100,
                        help="inducing points for the sparse surrogate")
    p_tune.add_argument("--leaf-size", type=int, default=200,
                        help="max points per local GP (partitioned surrogate)")
    p_tune.add_argument("--tla", choices=sorted(STRATEGY_REGISTRY))
    p_tune.add_argument("--source-task", help="source task as JSON (with --tla)")
    p_tune.add_argument("--source-samples", type=int, default=50)
    p_tune.set_defaults(func=_cmd_tune)

    p_sa = sub.add_parser("sensitivity", help="Sobol sensitivity analysis")
    p_sa.add_argument("--app", required=True, choices=sorted(_APPS))
    p_sa.add_argument("--machine", choices=sorted(MACHINE_PRESETS))
    p_sa.add_argument("--nodes", type=int, default=1)
    p_sa.add_argument("--task", help="task parameters as JSON")
    p_sa.add_argument("--samples", type=int, default=300)
    p_sa.add_argument("--n-base", type=int, default=512)
    p_sa.add_argument("--seed", type=int, default=0)
    p_sa.set_defaults(func=_cmd_sensitivity)

    p_var = sub.add_parser("variability", help="repeat-noise diagnosis")
    p_var.add_argument("--app", required=True, choices=sorted(_APPS))
    p_var.add_argument("--machine", choices=sorted(MACHINE_PRESETS))
    p_var.add_argument("--nodes", type=int, default=1)
    p_var.add_argument("--task", help="task parameters as JSON")
    p_var.add_argument("--configs", type=int, default=6)
    p_var.add_argument("--repeats", type=int, default=8)
    p_var.add_argument("--seed", type=int, default=0)
    p_var.set_defaults(func=_cmd_variability)

    p_band = sub.add_parser("bandit", help="multi-fidelity (GPTuneBand) tuning")
    p_band.add_argument("--app", required=True, choices=sorted(_APPS))
    p_band.add_argument("--machine", choices=sorted(MACHINE_PRESETS))
    p_band.add_argument("--nodes", type=int, default=8)
    p_band.add_argument("--task", help="task parameters as JSON")
    p_band.add_argument("--budget", type=float, default=8.0,
                        help="budget in full-evaluation equivalents")
    p_band.add_argument("--bracket-size", type=int, default=9)
    p_band.add_argument("--rungs", type=int, default=3)
    p_band.add_argument("--seed", type=int, default=0)
    p_band.set_defaults(func=_cmd_bandit)

    p_svc = sub.add_parser("service", help="demo the sharded crowd service")
    p_svc.add_argument("--app", default="demo", choices=sorted(_APPS))
    p_svc.add_argument("--machine", choices=sorted(MACHINE_PRESETS))
    p_svc.add_argument("--nodes", type=int, default=1)
    p_svc.add_argument("--task", help="task parameters as JSON")
    p_svc.add_argument("--shards", type=int, default=4)
    p_svc.add_argument("--replication", type=int, default=2)
    p_svc.add_argument("--write-quorum", type=int, default=1,
                       help="replica acks required before an upload succeeds")
    p_svc.add_argument("--read-quorum", type=int, default=1,
                       help="replicas consulted (and read-repaired) per pinned read")
    p_svc.add_argument("--uploads", type=int, default=32)
    p_svc.add_argument("--data-dir", help="persist shard WALs/snapshots here")
    p_svc.add_argument("--registry", action="store_true",
                       help="attach the frozen surrogate-model registry "
                            "and demo server-side prediction")
    p_svc.add_argument("--seed", type=int, default=0)
    p_svc.set_defaults(func=_cmd_service)

    p_fab = sub.add_parser("fabric", help="demo the multi-process tuning fabric")
    p_fab.add_argument("--app", default="demo", choices=sorted(_APPS))
    p_fab.add_argument("--machine", choices=sorted(MACHINE_PRESETS))
    p_fab.add_argument("--nodes", type=int, default=1)
    p_fab.add_argument("--task", help="task parameters as JSON")
    p_fab.add_argument("--samples", type=int, default=16)
    p_fab.add_argument("--seed", type=int, default=0)
    p_fab.add_argument("--n-initial", type=int, default=3)
    p_fab.add_argument("--procs", type=int, default=4,
                       help="worker processes in the fabric")
    p_fab.add_argument("--latency-s", type=float, default=0.05,
                       help="simulated seconds per evaluation")
    p_fab.add_argument("--lease-s", type=float, default=30.0,
                       help="lease before a straggler's job re-dispatches")
    p_fab.add_argument("--kill-after", type=int, default=0,
                       help="hard-kill one busy worker after N completions "
                            "(crash demo; 0 = no kill)")
    p_fab.add_argument("--data-dir",
                       help="durable job-queue directory (WAL + snapshots)")
    p_fab.add_argument("--shards", type=int, default=2,
                       help="crowd-service shards behind the streamed uploads")
    p_fab.set_defaults(func=_cmd_fabric)

    p_pool = sub.add_parser("pool", help="print the TLA pool (Table I)")
    p_pool.set_defaults(func=_cmd_pool)

    p_apps = sub.add_parser("apps", help="list apps, machines, strategies")
    p_apps.set_defaults(func=_cmd_apps)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
