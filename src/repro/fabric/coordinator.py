"""The fabric coordinator: leases, liveness, elasticity, re-dispatch.

:class:`FabricCoordinator` owns a :class:`~repro.fabric.jobqueue.
DurableJobQueue` and a set of :mod:`multiprocessing` workers.  Its event
pump, driven from :meth:`get`, does four things each tick:

1. **drain** every worker's outbox — heartbeats refresh liveness,
   ``done`` payloads go through the queue's exactly-once
   :meth:`~repro.fabric.jobqueue.DurableJobQueue.complete` and (when
   applied) surface as :class:`FabricOutcome`\\ s, with the worker's
   perf snapshot merged into the parent's collectors;
2. **reap** dead processes — a worker that exited without being asked
   (kill -9, segfault, OOM) has its leased job re-dispatched
   immediately;
3. **expire** leases — a leased job past its deadline while its worker
   is merely *slow* is re-dispatched to another worker (straggler
   mitigation); if the straggler eventually reports, the stale token is
   rejected by the queue, so the completion is never applied twice.  A
   job that exhausts ``max_redispatch`` is completed as a failure
   rather than looping forever;
4. **dispatch** pending jobs to idle workers under fresh leases.

Elasticity: :meth:`add_worker` joins a new process mid-run,
:meth:`remove_worker` drains one gracefully (it finishes its current
evaluation first — the stop message queues behind the job), and
:meth:`kill_worker` hard-terminates one to simulate a crash.  The
dispatch loop sees only the current membership, so the run continues at
whatever capacity survives.

Start method: ``fork`` by default (evaluation closures need no
pickling — they are inherited), falling back to the platform default
where ``fork`` is unavailable, in which case ``evaluate`` must be
picklable.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..core import perf
from ..core.problem import Evaluation
from .jobqueue import DurableJobQueue, JobState
from .worker import MSG_DONE, MSG_HEARTBEAT, MSG_READY, worker_main

__all__ = ["FabricCoordinator", "FabricOptions", "FabricOutcome"]


@dataclass
class FabricOptions:
    """Controls for the multi-process tuning fabric.

    Latency semantics match :class:`~repro.engine.tuner.EngineOptions`:
    with the default zero latencies the fabric runs as fast as the
    objective computes, benchmarks dial in realistic per-evaluation
    costs.  ``lease_s`` bounds how long the coordinator waits for a
    leased evaluation before re-dispatching it elsewhere; it must
    comfortably exceed the longest real evaluation.
    """

    n_procs: int = 2
    #: max proposals per refill round (the ``q`` of batch proposal)
    batch: int = 1
    #: fantasy strategy for in-flight evaluations (see LIE_STRATEGIES)
    lie: str = "cl-min"
    #: simulated seconds per unit of objective output
    latency_scale: float = 0.0
    #: fixed simulated seconds per evaluation
    base_latency_s: float = 0.0
    #: simulated seconds charged to failed evaluations
    failure_latency_s: float = 0.0
    #: log-normal sigma of per-worker speed factors
    heterogeneity: float = 0.0
    #: seconds a leased job may run before straggler re-dispatch
    lease_s: float = 30.0
    #: worker heartbeat cadence (liveness resolution)
    heartbeat_s: float = 0.2
    #: re-dispatches per job before it is completed as a failure
    max_redispatch: int = 4
    #: queue directory (None = memory-only queue)
    data_dir: str | Path | None = None
    snapshot_every: int = 512
    fsync_every: int = 1
    start_method: str = "fork"
    #: coordinator pump tick (seconds)
    tick_s: float = 0.003

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        if self.max_redispatch < 0:
            raise ValueError("max_redispatch must be >= 0")


@dataclass
class FabricOutcome:
    """One terminal job outcome delivered to the tuning loop."""

    job_id: int
    config: dict[str, Any]
    #: completed evaluation; None when the job was abandoned as a failure
    evaluation: Evaluation | None
    #: None on success, else "lease-exhausted" / "error: ..."
    error: str | None
    worker_id: int | None
    attempt: int
    redispatches: int
    latency_s: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _WorkerHandle:
    worker_id: int
    process: Any
    inbox: Any
    outbox: Any
    speed: float
    last_seen: float
    #: job currently dispatched to this worker (None = idle)
    job_id: int | None = None
    #: a graceful stop was requested; don't treat exit as a crash
    stopping: bool = False

    @property
    def idle(self) -> bool:
        return self.job_id is None and not self.stopping


class FabricCoordinator:
    """Elastic multi-process evaluation fabric over a durable queue.

    Parameters
    ----------
    evaluate:
        ``evaluate(config) -> Evaluation``.  Inherited by workers via
        fork, so closures over the problem/task are fine.
    options:
        Fabric controls (process count, latencies, lease/heartbeat).
    queue:
        An existing :class:`DurableJobQueue` (e.g. one recovered from a
        crashed run's directory — its pending jobs are dispatched before
        any new submissions); by default one is built from
        ``options.data_dir``.
    seed:
        Seeds the per-worker speed factors (heterogeneity).
    fault:
        Deterministic worker-crash injector forwarded to every worker
        (see :func:`~repro.fabric.worker.worker_main`).
    """

    def __init__(
        self,
        evaluate: Callable[[dict[str, Any]], Evaluation],
        options: FabricOptions | None = None,
        *,
        queue: DurableJobQueue | None = None,
        seed: int | None = None,
        fault: Callable[[int, int], bool] | None = None,
    ) -> None:
        self.options = options or FabricOptions()
        self._evaluate = evaluate
        self._fault = fault
        self.queue = queue if queue is not None else DurableJobQueue(
            self.options.data_dir,
            snapshot_every=self.options.snapshot_every,
            fsync_every=self.options.fsync_every,
        )
        try:
            self._ctx = mp.get_context(self.options.start_method)
        except ValueError:  # platform without fork: evaluate must pickle
            self._ctx = mp.get_context()
        self._rng = np.random.default_rng(seed)
        self._workers: dict[int, _WorkerHandle] = {}
        self._next_wid = 0
        self._completed: "queue_mod.SimpleQueue[FabricOutcome]" = (
            queue_mod.SimpleQueue()
        )
        self._inflight = 0
        self._busy_s = 0.0
        self._started = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "FabricCoordinator":
        if self._started:
            return self
        for _ in range(self.options.n_procs):
            self._spawn_worker()
        self._started = True
        # a queue recovered from a crashed run may carry pending jobs:
        # they are part of this run's in-flight budget
        self._inflight += self.queue.n_pending
        return self

    def __enter__(self) -> "FabricCoordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop all workers and the queue (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in list(self._workers.values()):
            handle.stopping = True
            try:
                handle.inbox.put(("stop", None))
            except (OSError, ValueError):  # pragma: no cover - queue gone
                pass
        deadline = time.monotonic() + 5.0
        for handle in list(self._workers.values()):
            handle.process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            self._discard_channels(handle)
        self._workers.clear()
        self.queue.close()

    @staticmethod
    def _discard_channels(handle: _WorkerHandle) -> None:
        for q in (handle.inbox, handle.outbox):
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, AttributeError):  # pragma: no cover
                pass

    # -- membership ----------------------------------------------------------
    def _spawn_worker(self) -> int:
        wid = self._next_wid
        self._next_wid += 1
        sigma = float(self.options.heterogeneity)
        speed = float(np.exp(self._rng.normal(0.0, sigma))) if sigma > 0 else 1.0
        inbox = self._ctx.Queue()
        outbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(
                wid,
                inbox,
                outbox,
                self._evaluate,
                (
                    self.options.base_latency_s,
                    self.options.latency_scale,
                    self.options.failure_latency_s,
                ),
                speed,
                self.options.heartbeat_s,
                self._fault,
            ),
            name=f"fabric-worker-{wid}",
            daemon=True,
        )
        process.start()
        self._workers[wid] = _WorkerHandle(
            wid, process, inbox, outbox, speed, last_seen=time.monotonic()
        )
        perf.incr("fabric_workers_started")
        return wid

    def add_worker(self) -> int:
        """Elastically join one more worker process mid-run."""
        if self._closed:
            raise RuntimeError("coordinator is closed")
        wid = self._spawn_worker()
        perf.gauge("fabric_workers", len(self._workers))
        return wid

    def remove_worker(self, worker_id: int) -> None:
        """Gracefully drain one worker: it finishes its current job first.

        The stop message queues behind any dispatched job, so nothing is
        re-dispatched; the process is reaped by the pump once it exits.
        """
        handle = self._workers[worker_id]
        handle.stopping = True
        handle.inbox.put(("stop", None))
        perf.incr("fabric_workers_removed")

    def kill_worker(self, worker_id: int) -> None:
        """Hard-kill one worker (crash simulation); its job re-dispatches."""
        handle = self._workers[worker_id]
        handle.process.terminate()
        perf.incr("fabric_workers_killed")

    def busy_workers(self) -> list[int]:
        """Workers currently executing a dispatched job."""
        return [w.worker_id for w in self._workers.values() if w.job_id is not None]

    def liveness(self) -> dict[int, float]:
        """Seconds since each live worker was last heard from."""
        now = time.monotonic()
        return {
            w.worker_id: now - w.last_seen for w in self._workers.values()
        }

    @property
    def n_workers(self) -> int:
        """Current live (non-draining) membership."""
        return sum(1 for w in self._workers.values() if not w.stopping)

    # -- submission / collection ---------------------------------------------
    def submit(self, config: dict[str, Any]) -> int:
        """Durably enqueue one evaluation; returns its job id."""
        job_id = self.queue.enqueue(config)
        self._inflight += 1
        perf.gauge("fabric_queue_depth", self.queue.n_pending)
        return job_id

    @property
    def inflight(self) -> int:
        """Jobs submitted (or recovered) whose outcome was not collected."""
        return self._inflight

    def get(self, timeout: float | None = None) -> FabricOutcome:
        """Next terminal outcome (raises ``queue.Empty`` on timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self._pump()
            try:
                outcome = self._completed.get_nowait()
            except queue_mod.Empty:
                if deadline is not None and time.monotonic() > deadline:
                    raise queue_mod.Empty from None
                time.sleep(self.options.tick_s)
                continue
            self._inflight -= 1
            return outcome

    # -- accounting ----------------------------------------------------------
    @property
    def busy_s(self) -> float:
        """Total worker-seconds spent executing evaluations."""
        return self._busy_s

    def utilization(self, wall_s: float, n_workers: int | None = None) -> float:
        """Fraction of available worker time spent busy over ``wall_s``."""
        if wall_s <= 0:
            return 0.0
        n = n_workers if n_workers is not None else max(self.options.n_procs, 1)
        return min(self._busy_s / (n * wall_s), 1.0)

    @property
    def redispatches(self) -> int:
        return self.queue.redispatches

    # -- the event pump -------------------------------------------------------
    def _pump(self) -> None:
        now = time.monotonic()
        self._drain_outboxes(now)
        self._reap_dead(now)
        self._expire_leases(now)
        self._dispatch(now)

    def _drain_outboxes(self, now: float) -> None:
        for handle in list(self._workers.values()):
            while True:
                try:
                    kind, wid, body = handle.outbox.get_nowait()
                except (queue_mod.Empty, OSError):
                    break
                handle.last_seen = now
                if kind in (MSG_READY, MSG_HEARTBEAT):
                    continue
                assert kind == MSG_DONE
                self._on_done(handle, body)

    def _on_done(self, handle: _WorkerHandle, body: dict[str, Any]) -> None:
        if handle.job_id == body["job_id"]:
            handle.job_id = None  # worker is idle again either way
        self._busy_s += float(body.get("busy_s", 0.0))
        # worker-process counters fold into the parent collectors here —
        # the cross-process aggregation path (duplicate results included:
        # the compute they report really happened)
        snap = body.get("perf")
        if snap:
            perf.merge(snap)
        status = self.queue.complete(
            body["job_id"], body["token"], self._result_payload(body)
        )
        if status != "applied":
            return  # replay or straggler duplicate: never surfaced twice
        job = self.queue.job(body["job_id"])
        evaluation = (
            Evaluation.from_dict(body["evaluation"])
            if body.get("evaluation") is not None
            else None
        )
        self._completed.put(
            FabricOutcome(
                job_id=job.job_id,
                config=dict(job.config),
                evaluation=evaluation,
                error=body.get("error"),
                worker_id=handle.worker_id,
                attempt=int(body["attempt"]),
                redispatches=job.redispatches,
                latency_s=float(body.get("latency_s", 0.0)),
                metadata={
                    "worker": handle.worker_id,
                    "attempt": int(body["attempt"]),
                    "latency_s": round(float(body.get("latency_s", 0.0)), 6),
                },
            )
        )

    @staticmethod
    def _result_payload(body: dict[str, Any]) -> dict[str, Any]:
        """The durable completion record journaled by the queue."""
        return {
            "evaluation": body.get("evaluation"),
            "error": body.get("error"),
            "attempt": int(body.get("attempt", 0)),
        }

    def _reap_dead(self, now: float) -> None:
        for wid, handle in list(self._workers.items()):
            if handle.process.is_alive():
                continue
            del self._workers[wid]
            self._discard_channels(handle)
            if handle.stopping:
                continue  # asked to leave: a clean exit, not a crash
            perf.incr("fabric_worker_deaths")
            if handle.job_id is not None:
                self._recover_lost_job(handle.job_id)
            perf.gauge("fabric_workers", len(self._workers))

    def _expire_leases(self, now: float) -> None:
        for job in self.queue.expired(now):
            # the worker may be slow rather than dead — leave it running;
            # token dedup disarms whichever attempt loses the race
            owner = self._workers.get(job.worker) if job.worker is not None else None
            if owner is not None and owner.job_id == job.job_id:
                owner.job_id = None  # stop waiting on the straggler
            self._recover_lost_job(job.job_id)

    def _recover_lost_job(self, job_id: int) -> None:
        job = self.queue.job(job_id)
        if job.state == JobState.DONE:
            return
        if job.redispatches >= self.options.max_redispatch:
            # give up: a durable failure completion, budget is consumed
            status = self.queue.complete(
                job_id, f"{job_id}.abandoned", {"error": "lease-exhausted"}
            )
            if status == "applied":
                perf.incr("fabric_jobs_abandoned")
                self._completed.put(
                    FabricOutcome(
                        job_id=job_id,
                        config=dict(job.config),
                        evaluation=None,
                        error="lease-exhausted",
                        worker_id=None,
                        attempt=job.attempt,
                        redispatches=job.redispatches,
                        metadata={"attempt": job.attempt},
                    )
                )
            return
        self.queue.redispatch(job_id)

    def _dispatch(self, now: float) -> None:
        idle = [w for w in self._workers.values() if w.idle]
        for handle in idle:
            job = self.queue.lease(handle.worker_id, now, self.options.lease_s)
            if job is None:
                return
            handle.job_id = job.job_id
            try:
                handle.inbox.put(
                    (
                        "job",
                        {
                            "job_id": job.job_id,
                            "token": job.lease_token,
                            "attempt": job.attempt,
                            "config": dict(job.config),
                        },
                    )
                )
            except (OSError, ValueError):  # pragma: no cover - worker died
                handle.job_id = None
                self.queue.redispatch(job.job_id)
