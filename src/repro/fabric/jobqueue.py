"""Durable on-disk job queue for the tuning fabric.

One queue directory holds the full lifecycle of a tuning run's
evaluation jobs::

    <data_dir>/
        queue.wal.jsonl       append-only journal, one JSON op per line
        queue.snapshot.json   latest full queue image (atomic replace)

Durability contract (the same WAL-then-ack discipline as the crowd
shards, :mod:`repro.service.wal`):

* ``enqueue`` and ``complete`` are journaled *before* they return — an
  acknowledged completion survives any coordinator crash;
* leases are **soft state**: they are never journaled, so recovery puts
  every un-completed job back to *pending* (the evaluation it may have
  been running was never acknowledged, re-running it is correct);
* ``redispatch`` ops are journaled so attempt counts survive recovery
  and a recovered queue keeps issuing fresh lease tokens;
* a snapshot embeds the WAL sequence number it covers; recovery loads
  the snapshot and replays only the tail, tolerating a torn final line.

Exactly-once completion reuses the idempotency-token pattern of the
replicated service (PR 6): every lease carries a token
``"<job_id>.<attempt>"``, a completion is applied only once per job, a
re-delivery of the *same* token is an acknowledged no-op, and a
completion under a superseded token (a straggler finishing after its
lease expired and the job was re-dispatched) is rejected and counted
(``fabric_duplicate_completions``) — the job is never *applied* twice.

Without ``data_dir`` the queue is memory-only (unit tests, throwaway
runs) with identical semantics minus persistence.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..core import perf
from ..service.wal import WriteAheadLog, read_wal, write_json_atomic

__all__ = ["DurableJobQueue", "FabricJob", "JobState"]

_WAL_NAME = "queue.wal.jsonl"
_SNAP_NAME = "queue.snapshot.json"
_SNAP_FORMAT = "gptunecrowd-fabric-queue-v1"


class JobState:
    """Lifecycle states of a fabric job."""

    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"


@dataclass
class FabricJob:
    """One evaluation job and its (partly volatile) scheduling state."""

    job_id: int
    config: dict[str, Any]
    attempt: int = 0
    state: str = JobState.PENDING
    #: completion token of the applied completion (once DONE)
    token: str | None = None
    #: completion payload (evaluation dict + worker bookkeeping)
    result: dict[str, Any] | None = None
    #: times the job was re-dispatched after a lost or expired lease
    redispatches: int = 0
    # -- volatile lease state (never persisted) --
    worker: int | None = field(default=None, compare=False)
    lease_expires: float = field(default=0.0, compare=False)

    @property
    def lease_token(self) -> str:
        """The idempotency token of the *current* attempt's lease."""
        return f"{self.job_id}.{self.attempt}"

    def to_doc(self) -> dict[str, Any]:
        """Persistent image: volatile lease state collapses to pending."""
        return {
            "job_id": self.job_id,
            "config": dict(self.config),
            "attempt": self.attempt,
            "state": JobState.DONE if self.state == JobState.DONE else JobState.PENDING,
            "token": self.token,
            "result": self.result,
            "redispatches": self.redispatches,
        }

    @staticmethod
    def from_doc(doc: Mapping[str, Any]) -> "FabricJob":
        return FabricJob(
            job_id=int(doc["job_id"]),
            config=dict(doc["config"]),
            attempt=int(doc.get("attempt", 0)),
            state=str(doc.get("state", JobState.PENDING)),
            token=doc.get("token"),
            result=doc.get("result"),
            redispatches=int(doc.get("redispatches", 0)),
        )


class DurableJobQueue:
    """Crash-recoverable evaluation-job queue with exactly-once completion.

    Parameters
    ----------
    data_dir:
        Directory for the WAL and snapshots; ``None`` keeps the queue in
        memory only.
    snapshot_every:
        Journaled ops between automatic snapshots (snapshot + WAL
        truncation keeps recovery bounded on long runs).
    fsync_every:
        Passed through to the WAL — 1 (default) syncs every op.
    """

    def __init__(
        self,
        data_dir: str | Path | None = None,
        *,
        snapshot_every: int = 512,
        fsync_every: int = 1,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.snapshot_every = int(snapshot_every)
        self._lock = threading.Lock()
        self._jobs: dict[int, FabricJob] = {}
        self._pending: deque[int] = deque()
        self._next_job_id = 0
        self._ops_since_snapshot = 0
        self._wal: WriteAheadLog | None = None
        if self.data_dir is not None:
            last_seq = self._recover()
            self._wal = WriteAheadLog(
                self.data_dir / _WAL_NAME, fsync_every=fsync_every
            )
            self._wal.start_from(last_seq)

    # -- recovery ------------------------------------------------------------
    def _recover(self) -> int:
        """Load snapshot + WAL tail; returns the last applied sequence."""
        assert self.data_dir is not None
        snap_path = self.data_dir / _SNAP_NAME
        snap_seq = 0
        if snap_path.exists():
            blob = json.loads(snap_path.read_text())
            if blob.get("format") != _SNAP_FORMAT:
                raise ValueError(f"{snap_path}: not a fabric queue snapshot")
            snap_seq = int(blob["wal_seq"])
            self._next_job_id = int(blob["next_job_id"])
            for doc in blob["jobs"]:
                job = FabricJob.from_doc(doc)
                self._jobs[job.job_id] = job
        last_seq = snap_seq
        for entry in read_wal(self.data_dir / _WAL_NAME):
            seq = int(entry.get("seq", 0))
            if seq <= snap_seq:
                continue  # already covered by the snapshot
            self._apply_op(entry)
            last_seq = max(last_seq, seq)
            perf.incr("fabric_queue_replayed")
        # un-completed jobs go back to pending in enqueue order: their
        # leases (if any) died with the coordinator
        for job_id in sorted(self._jobs):
            job = self._jobs[job_id]
            if job.state != JobState.DONE:
                job.state = JobState.PENDING
                job.worker = None
                self._pending.append(job_id)
        return last_seq

    def _apply_op(self, entry: Mapping[str, Any]) -> None:
        op = entry["op"]
        if op == "enqueue":
            job_id = int(entry["job_id"])
            self._jobs[job_id] = FabricJob(job_id, dict(entry["config"]))
            self._next_job_id = max(self._next_job_id, job_id + 1)
        elif op == "redispatch":
            job = self._jobs[int(entry["job_id"])]
            job.attempt = max(job.attempt, int(entry["attempt"]))
            job.redispatches += 1
        elif op == "complete":
            job = self._jobs[int(entry["job_id"])]
            job.state = JobState.DONE
            job.token = entry["token"]
            job.result = entry.get("result")
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown fabric queue op {op!r}")

    # -- journaling ----------------------------------------------------------
    def _journal(self, op: dict[str, Any]) -> None:
        if self._wal is None:
            return
        self._wal.append(op)
        self._ops_since_snapshot += 1
        if self._ops_since_snapshot >= self.snapshot_every:
            self._snapshot_locked()

    def _snapshot_locked(self) -> None:
        assert self.data_dir is not None and self._wal is not None
        blob = {
            "format": _SNAP_FORMAT,
            "wal_seq": self._wal.seq,
            "next_job_id": self._next_job_id,
            "jobs": [self._jobs[i].to_doc() for i in sorted(self._jobs)],
        }
        write_json_atomic(self.data_dir / _SNAP_NAME, blob)
        self._wal.truncate()
        self._ops_since_snapshot = 0
        perf.incr("fabric_queue_snapshots")

    def snapshot(self) -> None:
        """Write a full queue image and truncate the journal."""
        with self._lock:
            if self._wal is not None:
                self._wal.sync()
                self._snapshot_locked()

    # -- producing -----------------------------------------------------------
    def enqueue(self, config: Mapping[str, Any]) -> int:
        """Durably add one evaluation job; returns its id."""
        with self._lock:
            job_id = self._next_job_id
            self._next_job_id += 1
            self._jobs[job_id] = FabricJob(job_id, dict(config))
            self._pending.append(job_id)
            self._journal({"op": "enqueue", "job_id": job_id, "config": dict(config)})
            perf.incr("fabric_jobs_enqueued")
            return job_id

    # -- scheduling ----------------------------------------------------------
    def lease(self, worker: int, now: float, lease_s: float) -> FabricJob | None:
        """Hand the oldest pending job to ``worker`` under a lease."""
        with self._lock:
            while self._pending:
                job_id = self._pending.popleft()
                job = self._jobs[job_id]
                if job.state != JobState.PENDING:
                    continue  # completed while queued (recovery replay)
                job.state = JobState.LEASED
                job.worker = int(worker)
                job.lease_expires = now + float(lease_s)
                return job
            return None

    def expired(self, now: float) -> list[FabricJob]:
        """Leased jobs whose lease has lapsed (straggler candidates)."""
        with self._lock:
            return [
                job
                for job in self._jobs.values()
                if job.state == JobState.LEASED and now > job.lease_expires
            ]

    def redispatch(self, job_id: int) -> FabricJob:
        """Put a lost/expired lease back to pending under a new attempt.

        The old attempt's token becomes stale: if the original worker
        still finishes, its completion is rejected by :meth:`complete`.
        """
        with self._lock:
            job = self._jobs[job_id]
            if job.state != JobState.LEASED:
                return job
            job.state = JobState.PENDING
            job.worker = None
            job.attempt += 1
            job.redispatches += 1
            self._pending.append(job_id)
            self._journal(
                {"op": "redispatch", "job_id": job_id, "attempt": job.attempt}
            )
            perf.incr("fabric_redispatches")
            return job

    # -- completing ----------------------------------------------------------
    def complete(
        self, job_id: int, token: str, result: Mapping[str, Any] | None = None
    ) -> str:
        """Apply one completion exactly once; returns the disposition.

        ``"applied"``
            First completion of the job — journaled before returning;
            the acknowledgement is durable.
        ``"replayed"``
            Same token delivered again (a lost-ack retry): acknowledged
            without re-applying or re-journaling.
        ``"rejected"``
            The job is already done under a *different* token — a
            straggler's duplicate result.  Counted, never applied.
        """
        with self._lock:
            job = self._jobs[job_id]
            if job.state == JobState.DONE:
                if token == job.token:
                    return "replayed"
                perf.incr("fabric_duplicate_completions")
                return "rejected"
            job.state = JobState.DONE
            job.token = token
            job.result = dict(result) if result is not None else None
            job.worker = None
            self._journal(
                {"op": "complete", "job_id": job_id, "token": token,
                 "result": job.result}
            )
            perf.incr("fabric_jobs_completed")
            return "applied"

    # -- introspection -------------------------------------------------------
    def job(self, job_id: int) -> FabricJob:
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> Iterator[FabricJob]:
        with self._lock:
            items = list(self._jobs.values())
        return iter(items)

    @property
    def n_jobs(self) -> int:
        with self._lock:
            return len(self._jobs)

    @property
    def n_pending(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == JobState.PENDING)

    @property
    def n_leased(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == JobState.LEASED)

    @property
    def n_done(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.state == JobState.DONE)

    @property
    def redispatches(self) -> int:
        with self._lock:
            return sum(j.redispatches for j in self._jobs.values())

    def completed_jobs(self) -> list[FabricJob]:
        """All DONE jobs (recovery: acknowledged results are replayable)."""
        with self._lock:
            return [j for j in self._jobs.values() if j.state == JobState.DONE]

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Flush and close the journal (idempotent)."""
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "DurableJobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
