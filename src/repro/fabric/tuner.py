"""Crowd tuning over the process fabric: propose, lease, stream, fold.

:class:`FabricTuner` is the distribution layer's face to the BO loop.
It reuses the asynchronous engine's whole proposal machinery —
constant-liar fantasy batches via
:meth:`~repro.engine.tuner.AsyncTuner._propose_batch`, incremental
GP/sparse-surrogate fold-in through the shared :class:`~repro.core.
tuner.Tuner` hooks — but evaluations execute on a
:class:`~repro.fabric.coordinator.FabricCoordinator` of worker
*processes* over a durable job queue, and every completed evaluation
streams through the crowd service (:class:`~repro.service.router.
CrowdRouter` or any ``handle()`` endpoint) the moment it lands.  One
tuning run therefore both **feeds** the shared database (uploads, which
also trigger the registry's debounced rebuilds) and can **consult** it
(``consult=True`` seeds the surrogate with the task's existing crowd
records before the first proposal — the paper's crowd premise end to
end).

Determinism contract: with one process, no faults and default
latencies, the fabric degenerates to propose → wait → fold and
reproduces the sequential :class:`~repro.core.tuner.Tuner` trajectory
bit-for-bit (pinned by ``tests/fabric/test_fabric_tuner.py``), exactly
as the threaded engine does — every speedup the fabric benchmark
measures is overlap, not a different algorithm.
"""

from __future__ import annotations

import queue as queue_mod
import time
from typing import Any, Callable, Mapping

import numpy as np

from ..core import perf
from ..core.history import History
from ..core.problem import Evaluation, TuningProblem
from ..core.tuner import EvaluationCallback, TunerOptions, TuningResult
from ..engine.stream import CrowdStreamer
from ..engine.tuner import AsyncTuner, EngineOptions
from .coordinator import FabricCoordinator, FabricOptions

__all__ = ["FabricTuner"]


class FabricTuner(AsyncTuner):
    """Asynchronous batched tuner over the multi-process fabric.

    Parameters
    ----------
    problem:
        The tuning problem to minimize.
    options:
        BO-loop controls (shared with the sequential tuner).
    fabric:
        Fabric controls: processes, batch, latencies, lease/heartbeat,
        queue directory.
    callbacks:
        Called with every completed :class:`Evaluation` in completion
        order (in addition to crowd streaming when ``crowd`` is given).
    crowd:
        Any upload endpoint with ``handle(request) -> response`` — a
        :class:`~repro.service.client.ServiceClient`, a
        :class:`~repro.service.router.CrowdRouter`, or a bare
        :class:`~repro.crowd.server.CrowdServer`.  Every evaluation is
        uploaded as it lands (requires ``api_key``).
    consult:
        Query the crowd database for this problem+task before tuning
        and seed the surrogate with the records found (they feed the
        model, not the budget).
    on_progress:
        ``on_progress(completed, coordinator)`` after every collected
        evaluation — the hook benchmarks and the CLI use to kill or
        add workers mid-run.
    fault:
        Deterministic worker-crash injector (tests, benchmarks).
    """

    name = "FabricNoTLA"

    def __init__(
        self,
        problem: TuningProblem,
        options: TunerOptions | None = None,
        fabric: FabricOptions | None = None,
        callbacks: list[EvaluationCallback] | None = None,
        *,
        crowd: Any | None = None,
        api_key: str | None = None,
        machine_configuration: Mapping[str, Any] | None = None,
        software_configuration: Mapping[str, Any] | None = None,
        consult: bool = False,
        on_progress: Callable[[int, FabricCoordinator], None] | None = None,
        fault: Callable[[int, int], bool] | None = None,
    ) -> None:
        self.fabric = fabric or FabricOptions()
        engine = EngineOptions(
            n_workers=self.fabric.n_procs,
            batch=self.fabric.batch,
            lie=self.fabric.lie,
        )
        super().__init__(problem, options, engine, callbacks)
        self.crowd = crowd
        self.api_key = api_key
        self.consult = bool(consult)
        self.on_progress = on_progress
        self._fault = fault
        self.streamer: CrowdStreamer | None = None
        if crowd is not None:
            if api_key is None:
                raise ValueError("crowd streaming requires api_key")
            self.streamer = CrowdStreamer(
                crowd,
                api_key,
                problem.name,
                machine_configuration=machine_configuration,
                software_configuration=software_configuration,
            )
            self.callbacks.append(self.streamer)
        elif consult:
            raise ValueError("consult=True requires a crowd endpoint")

    # -- crowd read path -----------------------------------------------------
    def consult_crowd(self, task: Mapping[str, Any]) -> History:
        """Seed a history with the crowd's existing records for ``task``.

        Successes and failures both load (failures feed the feasibility
        model, the paper's treatment of bad configurations); records
        whose configurations do not fit this problem's parameter space
        are skipped.  The returned history is passed as a continuation,
        so crowd records feed the surrogate but never the budget.
        """
        assert self.crowd is not None and self.api_key is not None
        hist = History(task, self.problem.parameter_space)
        response = self.crowd.handle(
            {
                "route": "query",
                "api_key": self.api_key,
                "problem_name": self.problem.name,
                "task_parameters": dict(task),
                "require_success": False,
            }
        )
        if not response.get("ok"):
            return hist
        names = set(self.problem.parameter_space.names)
        docs = sorted(
            response.get("records", []),
            key=lambda d: (float(d.get("timestamp", 0.0) or 0.0), d.get("uid", 0)),
        )
        for doc in docs:
            config = doc.get("tuning_parameters") or {}
            if set(config) != names:
                continue
            try:
                hist.append(
                    Evaluation(
                        dict(task),
                        dict(config),
                        doc.get("output"),
                        {"crowd_uid": doc.get("uid"), "crowd_seed": True},
                    )
                )
                perf.incr("fabric_consulted_records")
            except Exception:  # malformed crowd record: skip, don't die
                continue
        return hist

    # -- main loop -----------------------------------------------------------
    def tune(
        self,
        task: Mapping[str, Any],
        n_samples: int,
        *,
        seed: int | None = None,
        history: History | None = None,
    ) -> TuningResult:
        """Run ``n_samples`` evaluations on ``task`` across the fabric.

        Budget semantics match the engine: every terminal outcome
        (success, objective failure, or a job abandoned after
        ``max_redispatch`` lost leases) consumes one sample;
        re-dispatches of the same job do not.
        """
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        self.problem.input_space.validate(task)
        rng = np.random.default_rng(seed)
        fab = self.fabric
        coordinator = FabricCoordinator(
            lambda cfg: self.problem.evaluate(task, cfg),
            fab,
            seed=seed,
            fault=self._fault,
        )
        pending: dict[int, dict[str, Any]] = {}  # job_id -> config
        completed = 0
        t0 = time.perf_counter()
        with perf.collect() as stats, coordinator:
            with perf.timer("prepare"):
                if history is not None:
                    hist = history
                elif self.consult:
                    hist = self.consult_crowd(task)
                else:
                    hist = History(task, self.problem.parameter_space)
                self._prepare(task, rng)

            def refill() -> None:
                while (
                    completed + len(pending) < n_samples
                    and coordinator.inflight < max(coordinator.n_workers, 1)
                ):
                    k = min(
                        fab.batch,
                        max(coordinator.n_workers, 1) - coordinator.inflight,
                        n_samples - completed - len(pending),
                    )
                    with perf.timer("propose"):
                        configs = self._propose_batch(
                            hist, rng, k, list(pending.values())
                        )
                    if not configs:
                        return
                    for cfg in configs:
                        pending[coordinator.submit(cfg)] = cfg
                    perf.gauge("fabric_pending_fantasies", len(pending))

            refill()
            while completed < n_samples:
                try:
                    outcome = coordinator.get(timeout=120.0)
                except queue_mod.Empty:  # pragma: no cover - watchdog
                    raise RuntimeError(
                        f"fabric stalled: {len(pending)} evaluations pending, "
                        f"{completed}/{n_samples} completed, "
                        f"{coordinator.n_workers} workers live"
                    )
                evaluation = outcome.evaluation
                if evaluation is None:
                    # abandoned job or objective exception: a crowd-style
                    # failure record — consumes budget, feeds feasibility
                    evaluation = Evaluation(
                        dict(task),
                        dict(outcome.config),
                        None,
                        {"failure": outcome.error or "unknown"},
                    )
                evaluation.metadata.update(outcome.metadata)
                evaluation.metadata["attempts"] = outcome.attempt + 1
                pending.pop(outcome.job_id, None)
                hist.append(evaluation)
                completed += 1
                for cb in self.callbacks:
                    cb(evaluation)
                if self.on_progress is not None:
                    self.on_progress(completed, coordinator)
                refill()
            wall = time.perf_counter() - t0
            perf.gauge(
                "fabric_worker_utilization", coordinator.utilization(wall)
            )
            perf.gauge("fabric_wall_s", wall)
            perf.gauge("fabric_workers", max(coordinator.n_workers, 1))
        self._last_redispatches = coordinator.redispatches
        return TuningResult(
            problem_name=self.problem.name,
            tuner_name=self.name,
            task=dict(task),
            history=hist,
            seed=seed,
            perf=stats.snapshot(),
        )
