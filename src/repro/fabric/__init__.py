"""`repro.fabric` — the multi-process elastic tuning cluster (system S14).

The paper's crowd is many independent *machines* tuning concurrently
and feeding one shared database.  The threaded engine
(:mod:`repro.engine`) simulates that inside one process; this package
is the real distribution layer:

* :mod:`~repro.fabric.jobqueue` — a durable on-disk job queue (JSONL
  WAL + atomic snapshots, crash recovery, exactly-once completion via
  idempotent lease tokens),
* :mod:`~repro.fabric.worker` — the :mod:`multiprocessing` worker
  entry: evaluate, heartbeat, ship results (and perf snapshots) home,
* :mod:`~repro.fabric.coordinator` — leases jobs to workers, tracks
  liveness by heartbeat, re-dispatches expired leases and dead workers'
  jobs, and grows/drains/kills workers elastically mid-run,
* :mod:`~repro.fabric.tuner` — :class:`FabricTuner` drives the
  engine's constant-liar batch-proposal loop over the fabric and
  streams every completed evaluation through the crowd service, so one
  tuning run feeds (and optionally consults) the shared database end
  to end.

Layering: the fabric sits above :mod:`repro.engine` (proposal loop and
streaming reused by subclassing) and talks to :mod:`repro.service`
only through the public ``handle()`` protocol.  Nothing below imports
the fabric.
"""

from .coordinator import FabricCoordinator, FabricOptions, FabricOutcome
from .jobqueue import DurableJobQueue, FabricJob, JobState
from .tuner import FabricTuner

__all__ = [
    "DurableJobQueue",
    "FabricCoordinator",
    "FabricJob",
    "FabricOptions",
    "FabricOutcome",
    "FabricTuner",
    "JobState",
]
