"""The fabric worker process: evaluate, heartbeat, report home.

Each worker is one OS process (one crowd participant's machine).  It
owns two queues: an *inbox* the coordinator dispatches leased jobs into,
and an *outbox* it reports on — ``ready`` at startup, ``hb`` heartbeats
while idle and during long evaluations, and ``done`` with the completed
payload.  Per-worker queues keep channels independent: killing a worker
mid-``put`` can only corrupt its own outbox, which the coordinator
discards with the worker.

Every evaluation runs under its own :func:`repro.core.perf.collect`
window and the snapshot rides home inside the ``done`` payload — the
coordinator folds it into the parent's collectors with ``perf.merge``,
so counters incremented in worker processes are not silently lost (the
cross-process aggregation contract).

Simulated latency follows the engine's model: an evaluation whose
objective is ``y`` occupies its worker for
``base + scale * max(y, 0)`` seconds (failures cost the failure
latency), scaled by the worker's persistent speed factor.  The sleep is
sliced so heartbeats keep flowing mid-evaluation — a *slow* worker and
a *dead* worker look different to the coordinator.
"""

from __future__ import annotations

import os
import queue
import time
from typing import Any, Callable

from ..core import perf
from ..core.problem import Evaluation

__all__ = ["worker_main"]

#: message kinds on the worker outbox
MSG_READY = "ready"
MSG_HEARTBEAT = "hb"
MSG_DONE = "done"


def _latency_for(
    evaluation: Evaluation | None, latency_cfg: tuple[float, float, float]
) -> float:
    base, scale, failure = latency_cfg
    if evaluation is None or evaluation.failed:
        return max(failure, 0.0)
    return max(base + scale * max(evaluation.output, 0.0), 0.0)


def worker_main(
    worker_id: int,
    inbox: Any,
    outbox: Any,
    evaluate: Callable[[dict[str, Any]], Evaluation],
    latency_cfg: tuple[float, float, float],
    speed: float,
    heartbeat_s: float,
    fault: Callable[[int, int], bool] | None = None,
) -> None:
    """Run the worker loop until a ``stop`` message arrives.

    ``fault(job_id, attempt) -> bool`` is a deterministic crash
    injector: when it returns True the process dies mid-evaluation with
    ``os._exit`` (no cleanup, no goodbye — exactly what a segfaulting
    tuner process looks like to the coordinator).
    """
    outbox.put((MSG_READY, worker_id, None))
    hb_every = max(float(heartbeat_s), 1e-3)
    last_hb = time.monotonic()

    def beat(force: bool = False) -> None:
        nonlocal last_hb
        now = time.monotonic()
        if force or now - last_hb >= hb_every:
            outbox.put((MSG_HEARTBEAT, worker_id, None))
            last_hb = now

    def sleep_with_heartbeats(seconds: float) -> None:
        deadline = time.monotonic() + seconds
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, hb_every / 2.0))
            beat()

    while True:
        try:
            msg = inbox.get(timeout=hb_every / 2.0)
        except queue.Empty:
            beat()
            continue
        kind, body = msg
        if kind == "stop":
            return
        assert kind == "job"
        t0 = time.perf_counter()
        evaluation: Evaluation | None = None
        error: str | None = None
        latency = 0.0
        with perf.collect() as stats:
            with perf.timer("evaluate"):
                try:
                    evaluation = evaluate(body["config"])
                except Exception as exc:  # objective bug: report, don't die
                    evaluation, error = None, f"error: {exc!r}"
            latency = _latency_for(evaluation, latency_cfg) * speed
            if fault is not None and fault(body["job_id"], body["attempt"]):
                # die partway through the run, result lost with us
                time.sleep(0.5 * latency)
                os._exit(13)
            if latency > 0:
                sleep_with_heartbeats(latency)
            perf.incr("fabric_evaluations")
        outbox.put(
            (
                MSG_DONE,
                worker_id,
                {
                    "job_id": body["job_id"],
                    "token": body["token"],
                    "attempt": body["attempt"],
                    "evaluation": (
                        evaluation.to_dict() if evaluation is not None else None
                    ),
                    "error": error,
                    "latency_s": latency,
                    "busy_s": time.perf_counter() - t0,
                    "perf": stats.snapshot(),
                },
            )
        )
        beat(force=True)
