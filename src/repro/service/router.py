"""The crowd service front-end: routing, fan-out, caching, backpressure.

:class:`CrowdRouter` speaks the same request/response protocol as a
single :class:`~repro.crowd.server.CrowdServer`, so every existing
client (:class:`~repro.engine.stream.CrowdStreamer`,
:class:`~repro.service.client.RemoteRepository`, plain dict calls) works
unchanged against the sharded deployment.  Behind the protocol it:

* **routes writes** to the ``(problem_name, task)`` key's preference
  list on the consistent-hash ring — K-way replication, every replica
  stamped with the same router-assigned ``uid`` and logical timestamp so
  cross-shard reads deduplicate exactly;
* **serves task-pinned reads** from the primary with fallback through
  the replicas when shards are unreachable;
* **fans out** problem-wide reads (``query``, ``query_sql``,
  ``problems``, ``leaderboard``, ``contributors``, ``query_models``)
  across all shards in parallel and merges: records deduplicate by
  ``uid``, orderings and limits are re-applied globally, aggregates are
  recomputed from the deduplicated record set;
* **caches** read responses in a TTL+LRU cache tagged with the shards
  each response was served from; a write invalidates every cached entry
  that touched one of the written shards;
* **backpressures** per API key with a token bucket: over-rate requests
  get ``{"ok": false, "error": "throttled", "retry_after": ...}``
  instead of service time (clients retry after the hint).

Perf wiring: counters ``service_requests``, ``service_cache_hits`` /
``_misses`` / ``_invalidations``, ``service_throttled``,
``service_fanouts``, ``service_replica_fallbacks``,
``service_underreplicated_writes``; gauges ``service_cache_size`` and
``service_cache_hit_rate`` (plus the per-shard ``shard_depth.*`` /
``shard_records.*`` gauges exported by the transport and shard layers).
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any, Callable

from ..core import perf
from ..crowd.database import _get_path, _sort_key
from ..crowd.query import SqlQuery
from ..crowd.records import PerformanceRecord
from ..crowd.views import contributor_stats_from_records, leaderboard_from_records
from ..engine.faults import RetryPolicy
from .client import ServiceClient
from .shard import ShardRing, shard_key

__all__ = ["CrowdRouter", "RouterOptions", "TokenBucket"]

#: read routes whose responses may be cached
_CACHEABLE = frozenset(
    {"query", "query_sql", "problems", "leaderboard", "contributors", "query_models"}
)
#: account routes served by the admin shard (accounts are not sharded)
_ACCOUNT = frozenset({"register", "issue_key", "whoami"})


@dataclass
class RouterOptions:
    """Front-end knobs (defaults match a small trusted deployment)."""

    #: copies of every record, including the primary (1 = no replication)
    replication: int = 2
    #: virtual nodes per shard on the consistent-hash ring
    vnodes: int = 64
    #: LRU capacity of the query cache (0 disables caching)
    cache_size: int = 256
    #: seconds a cached response stays valid
    cache_ttl_s: float = 30.0
    #: sustained requests/second allowed per API key (None = unlimited)
    rate_limit: float | None = None
    #: burst capacity of each key's token bucket
    burst: int = 20
    #: retry policy of the router's own shard connections
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: int, clock: Callable[[], float]) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def acquire(self) -> float:
        """Take one token; returns 0.0, or seconds until one is available."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


class _QueryCache:
    """TTL+LRU response cache with shard-tag invalidation."""

    def __init__(self, size: int, ttl_s: float, clock: Callable[[], float]) -> None:
        self.size = int(size)
        self.ttl_s = float(ttl_s)
        self._clock = clock
        #: key -> (response, expires_at, shard_tags)
        self._entries: OrderedDict[str, tuple[dict, float, frozenset[str]]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> dict | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[1] >= self._clock():
                self._entries.move_to_end(key)
                self.hits += 1
                perf.incr("service_cache_hits")
                self._gauge_rate()
                return json.loads(json.dumps(entry[0]))  # defensive copy
            if entry is not None:
                del self._entries[key]  # expired
            self.misses += 1
            perf.incr("service_cache_misses")
            self._gauge_rate()
            return None

    def put(self, key: str, response: Mapping[str, Any], tags: frozenset[str]) -> None:
        if self.size <= 0:
            return
        with self._lock:
            self._entries[key] = (
                json.loads(json.dumps(dict(response))),
                self._clock() + self.ttl_s,
                tags,
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.size:
                self._entries.popitem(last=False)
            perf.gauge("service_cache_size", len(self._entries))

    def invalidate(self, shards: frozenset[str]) -> int:
        """Drop every entry served from any of the given shards."""
        with self._lock:
            doomed = [k for k, e in self._entries.items() if e[2] & shards]
            for k in doomed:
                del self._entries[k]
            if doomed:
                perf.incr("service_cache_invalidations", len(doomed))
                perf.gauge("service_cache_size", len(self._entries))
            return len(doomed)

    def _gauge_rate(self) -> None:
        total = self.hits + self.misses
        if total:
            perf.gauge("service_cache_hit_rate", self.hits / total)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class CrowdRouter:
    """Protocol-compatible front-end over N crowd shards."""

    def __init__(
        self,
        shards: Mapping[str, Any],
        options: RouterOptions | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        next_uid: int = 1,
        write_clock: float = 0.0,
    ) -> None:
        """``shards`` maps shard name to its channel: a
        :class:`SimTransport`, a :class:`ServiceClient`, or anything with
        ``handle()`` (e.g. a bare :class:`CrowdShard`).

        ``next_uid``/``write_clock`` seed the router's global stamps; a
        router fronting recovered shards must start past the largest
        recovered uid/timestamp or new writes would collide with (and
        deduplicate against) pre-crash records.
        """
        if not shards:
            raise ValueError("router needs at least one shard")
        self.options = options if options is not None else RouterOptions()
        self._clock = clock
        retry = self.options.retry
        self._shards: dict[str, ServiceClient] = {
            name: (
                channel
                if isinstance(channel, ServiceClient)
                else ServiceClient(channel, retry=retry)
            )
            for name, channel in shards.items()
        }
        self.ring = ShardRing(list(self._shards), vnodes=self.options.vnodes)
        self._admin = next(iter(self._shards))
        self._cache = _QueryCache(
            self.options.cache_size, self.options.cache_ttl_s, clock
        )
        self._buckets: dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        self._uid_lock = threading.Lock()
        self._next_uid = max(int(next_uid), 1)
        self._write_clock = float(write_clock)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # -- plumbing ------------------------------------------------------------
    def _stamp(self) -> tuple[int, float]:
        """Router-global uid + logical timestamp for one logical write."""
        with self._uid_lock:
            uid = self._next_uid
            self._next_uid += 1
            self._write_clock += 1.0
            return uid, self._write_clock

    def _fanout(self, request: Mapping[str, Any]) -> dict[str, dict[str, Any]]:
        """Send ``request`` to every shard in parallel; name -> response."""
        perf.incr("service_fanouts")
        names = list(self._shards)
        if len(names) == 1:
            return {names[0]: self._shards[names[0]].handle(request)}
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=len(names), thread_name_prefix="crowd-fanout"
                )
            pool = self._pool
        futures = {n: pool.submit(self._shards[n].handle, request) for n in names}
        return {n: f.result() for n, f in futures.items()}

    def _throttle(self, api_key: str) -> dict[str, Any] | None:
        if self.options.rate_limit is None:
            return None
        with self._buckets_lock:
            bucket = self._buckets.get(api_key)
            if bucket is None:
                bucket = self._buckets[api_key] = TokenBucket(
                    self.options.rate_limit, self.options.burst, self._clock
                )
            wait = bucket.acquire()
        if wait <= 0.0:
            return None
        perf.incr("service_throttled")
        return {
            "ok": False,
            "error": "throttled",
            "message": "rate limit exceeded",
            "retry_after": round(wait, 6),
        }

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    # -- dispatch ------------------------------------------------------------
    def handle(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Process one request dict; never raises (protocol contract)."""
        if not isinstance(request, Mapping):
            return _bad_request("request must be an object")
        perf.incr("service_requests")
        route = request.get("route")
        throttled = self._throttle(str(request.get("api_key", "")))
        if throttled is not None:
            return throttled

        if route in _ACCOUNT:
            return self._shards[self._admin].handle(request)
        if route == "upload":
            return self._route_upload(request)
        if route == "upload_model":
            return self._route_upload_model(request)

        cache_key = None
        if route in _CACHEABLE and self._cache.size > 0:
            cache_key = json.dumps(dict(request), sort_keys=True, default=str)
            cached = self._cache.get(cache_key)
            if cached is not None:
                return cached

        if route == "query":
            response, tags = self._route_query(request)
        elif route == "query_sql":
            response, tags = self._route_query_sql(request)
        elif route == "problems":
            response, tags = self._merge_problems(request)
        elif route == "leaderboard":
            response, tags = self._route_leaderboard(request)
        elif route == "contributors":
            response, tags = self._route_contributors(request)
        elif route == "query_models":
            response, tags = self._route_query_models(request)
        elif route == "browse_html":
            return _bad_request(
                "browse_html is not served by the sharded router; "
                "render locally from a query"
            )
        else:
            return {
                "ok": False,
                "error": "not_found",
                "message": f"unknown route {route!r}",
            }

        if cache_key is not None and response.get("ok"):
            self._cache.put(cache_key, response, tags)
        return response

    # -- writes --------------------------------------------------------------
    def _route_upload(self, request: Mapping[str, Any]) -> dict[str, Any]:
        try:
            problem = request["problem_name"]
            task = dict(request["task_parameters"])
        except (KeyError, TypeError) as exc:
            return _bad_request(str(exc))
        key = shard_key(problem, task)
        prefs = self.ring.preference(key, self.options.replication)
        uid, ts = self._stamp()
        stamped = {k: v for k, v in request.items() if k not in ("uid", "timestamp")}
        stamped["uid"] = uid
        stamped["timestamp"] = ts
        ok_response: dict[str, Any] | None = None
        failed = 0
        rejected: dict[str, Any] | None = None
        for name in prefs:
            response = self._shards[name].handle(stamped)
            if response.get("ok"):
                ok_response = response
            elif response.get("error") == "unavailable":
                failed += 1
            else:
                rejected = response  # auth / bad_request: same on every shard
                break
        self._cache.invalidate(frozenset(prefs))
        if rejected is not None:
            return rejected
        if ok_response is None:
            return {
                "ok": False,
                "error": "unavailable",
                "message": f"no replica of {prefs} accepted the write",
            }
        if failed:
            perf.incr("service_underreplicated_writes")
        return ok_response

    def _route_upload_model(self, request: Mapping[str, Any]) -> dict[str, Any]:
        try:
            key = shard_key(
                request["problem_name"], dict(request["task_parameters"])
            )
        except (KeyError, TypeError) as exc:
            return _bad_request(str(exc))
        primary = self.ring.primary(key)
        response = self._shards[primary].handle(request)
        self._cache.invalidate(frozenset([primary]))
        return response

    # -- reads ---------------------------------------------------------------
    def _route_query(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        task = request.get("task_parameters")
        problem = request.get("problem_name")
        if task is not None and problem:
            # task-pinned: the single owning shard has every record of
            # the key; fall back through the replicas when shards die
            prefs = self.ring.preference(
                shard_key(problem, dict(task)), self.options.replication
            )
            for i, name in enumerate(prefs):
                response = self._shards[name].handle(request)
                if response.get("error") == "unavailable":
                    continue
                if i > 0:
                    perf.incr("service_replica_fallbacks")
                return response, frozenset(prefs)
            return (
                {
                    "ok": False,
                    "error": "unavailable",
                    "message": f"all replicas of {prefs} are unreachable",
                },
                frozenset(prefs),
            )
        docs, error, tags = self._gather_records(request)
        if error is not None:
            return error, tags
        docs.sort(key=lambda d: _sort_key(d.get("timestamp")))
        limit = request.get("limit")
        if limit is not None:
            docs = docs[: max(int(limit), 0)]
        return {"ok": True, "records": docs}, tags

    def _route_query_sql(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        try:
            q = SqlQuery.parse(request.get("sql", ""))
        except Exception as exc:
            return _bad_request(str(exc)), frozenset()
        docs, error, tags = self._gather_records(request)
        if error is not None:
            return error, tags
        if q.order_by is not None:
            docs.sort(
                key=lambda d: _sort_key(_get_path(d, q.order_by)),
                reverse=q.descending,
            )
        if q.limit is not None:
            docs = docs[: q.limit]
        return {"ok": True, "records": docs}, tags

    def _gather_records(
        self, request: Mapping[str, Any]
    ) -> tuple[list[dict], dict[str, Any] | None, frozenset[str]]:
        """Fan out a record-returning request; dedup replicas by uid."""
        responses = self._fanout(request)
        tags = frozenset(responses)
        docs: list[dict] = []
        seen: set[Any] = set()
        reachable = 0
        for name, response in sorted(responses.items()):
            if response.get("error") == "unavailable":
                continue
            if not response.get("ok"):
                return [], response, tags  # auth/bad_request: uniform verdict
            reachable += 1
            for doc in response.get("records", []):
                uid = doc.get("uid", 0)
                dedup = uid if uid else json.dumps(doc, sort_keys=True, default=str)
                if dedup in seen:
                    continue
                seen.add(dedup)
                doc.pop("_id", None)  # shard-local ids are meaningless here
                docs.append(doc)
        if reachable == 0:
            return (
                [],
                {"ok": False, "error": "unavailable", "message": "no shard reachable"},
                tags,
            )
        return docs, None, tags

    def _merge_problems(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        responses = self._fanout(request)
        tags = frozenset(responses)
        names: set[str] = set()
        reachable = 0
        for _, response in sorted(responses.items()):
            if response.get("error") == "unavailable":
                continue
            if not response.get("ok"):
                return response, tags
            reachable += 1
            names.update(response.get("problems", []))
        if reachable == 0:
            return (
                {"ok": False, "error": "unavailable", "message": "no shard reachable"},
                tags,
            )
        return {"ok": True, "problems": sorted(names)}, tags

    def _dedup_problem_records(
        self, request: Mapping[str, Any]
    ) -> tuple[list[PerformanceRecord] | None, dict[str, Any] | None, frozenset[str]]:
        """Deduplicated records of one problem (failures included)."""
        inner = {
            "route": "query",
            "api_key": request.get("api_key"),
            "problem_name": request.get("problem_name"),
            "require_success": False,
        }
        docs, error, tags = self._gather_records(inner)
        if error is not None:
            return None, error, tags
        return [PerformanceRecord.from_doc(d) for d in docs], None, tags

    def _route_leaderboard(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        records, error, tags = self._dedup_problem_records(request)
        if error is not None:
            return error, tags
        rows = leaderboard_from_records(records)
        return (
            {
                "ok": True,
                "rows": [
                    {
                        "task_parameters": r.task_parameters,
                        "best_output": r.best_output,
                        "best_configuration": r.best_configuration,
                        "best_owner": r.best_owner,
                        "n_samples": r.n_samples,
                        "n_failures": r.n_failures,
                    }
                    for r in rows
                ],
            },
            tags,
        )

    def _route_contributors(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        records, error, tags = self._dedup_problem_records(request)
        if error is not None:
            return error, tags
        return (
            {"ok": True, "contributors": contributor_stats_from_records(records)},
            tags,
        )

    def _route_query_models(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        responses = self._fanout(request)
        tags = frozenset(responses)
        models: list[dict] = []
        reachable = 0
        for _, response in sorted(responses.items()):
            if response.get("error") == "unavailable":
                continue
            if not response.get("ok"):
                return response, tags
            reachable += 1
            models.extend(response.get("models", []))
        if reachable == 0:
            return (
                {"ok": False, "error": "unavailable", "message": "no shard reachable"},
                tags,
            )
        return {"ok": True, "models": models}, tags

    def routes(self) -> list[str]:
        return sorted(
            _ACCOUNT
            | _CACHEABLE
            | {"upload", "upload_model"}
        )


def _bad_request(message: str) -> dict[str, Any]:
    return {"ok": False, "error": "bad_request", "message": message}
