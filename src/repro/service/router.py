"""The crowd service front-end: routing, fan-out, caching, backpressure.

:class:`CrowdRouter` speaks the same request/response protocol as a
single :class:`~repro.crowd.server.CrowdServer`, so every existing
client (:class:`~repro.engine.stream.CrowdStreamer`,
:class:`~repro.service.client.RemoteRepository`, plain dict calls) works
unchanged against the sharded deployment.  Behind the protocol it:

* **routes writes** to the ``(problem_name, task)`` key's preference
  list on the consistent-hash ring — K-way replication, every replica
  stamped with the same router-assigned ``uid`` and logical timestamp so
  cross-shard reads deduplicate exactly.  The router acknowledges only
  after ``write_quorum`` replicas confirm, reports
  ``replicas_acked``/``replicas_total`` (plus a ``degraded`` status) in
  every upload response, and buffers a **hint** for each unreachable
  replica — replayed automatically when the shard's transport comes
  back up (hinted handoff);
* **serves task-pinned reads** from the primary with fallback through
  the replicas when shards are unreachable; with ``read_quorum`` > 1 it
  reads R replicas, merges newest-wins by ``(uid, timestamp)``, and
  **read-repairs** stale replicas by streaming them the records they
  miss;
* **heals in the background** — :meth:`CrowdRouter.anti_entropy_round`
  exchanges per-bucket digests of each shard's journaled records
  (bucketed by ``shard_key``) and streams missing or stale records
  between replicas; an optional interval thread runs rounds
  continuously;
* **resizes the cluster** — :meth:`CrowdRouter.add_shard` /
  :meth:`CrowdRouter.remove_shard` rebuild the consistent-hash ring and
  stream each rekeyed bucket to its new owners before dropping the old
  copies (graceful handoff; a crashed shard is simply removed and
  anti-entropy restores the replication factor from the survivors);
* **fans out** problem-wide reads (``query``, ``query_sql``,
  ``problems``, ``leaderboard``, ``contributors``, ``query_models``)
  across all shards in parallel and merges: records deduplicate by
  ``uid``, orderings and limits are re-applied globally, aggregates are
  recomputed from the deduplicated record set;
* **caches** read responses in a TTL+LRU cache tagged with the shards
  each response was served from; a write invalidates every cached entry
  that touched one of the written shards;
* **backpressures** per API key with a token bucket: over-rate requests
  get ``{"ok": false, "error": "throttled", "retry_after": ...}``
  instead of service time (clients retry after the hint).

The default ``(write_quorum=1, read_quorum=1, anti-entropy off)``
configuration reproduces the original fire-and-forget behavior: reads
take exactly the legacy single-replica path and upload responses are
unchanged except for the documented ``replicas_acked`` /
``replicas_total`` / ``status`` fields.

Perf wiring: counters ``service_requests``, ``service_cache_hits`` /
``_misses`` / ``_invalidations``, ``service_throttled``,
``service_fanouts``, ``service_replica_fallbacks``,
``service_underreplicated_writes``, ``service_quorum_failures``,
``service_read_repairs``, ``service_hints_stored`` / ``_replayed`` /
``_dropped``, ``service_antientropy_rounds`` / ``_records_healed``;
gauges ``service_cache_size``, ``service_cache_hit_rate`` and
``service_hints_pending`` (plus the per-shard ``shard_depth.*`` /
``shard_records.*`` gauges exported by the transport and shard layers).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any, Callable

from ..core import perf
from ..crowd.columnar import freeze
from ..crowd.database import _get_path, _sort_key
from ..crowd.query import SqlQuery
from ..crowd.views import contributor_stats_from_docs, leaderboard_from_docs
from ..engine.faults import RetryPolicy
from ..registry import REGISTRY_PROBLEMS
from .client import ServiceClient
from .shard import ShardRing, record_ident, shard_key, split_bucket_key

__all__ = ["CrowdRouter", "RouterOptions", "TokenBucket"]

#: read routes whose responses may be cached
_CACHEABLE = frozenset(
    {
        "query",
        "query_sql",
        "problems",
        "leaderboard",
        "contributors",
        "query_models",
        "predict",
        "model_meta",
        "sensitivity",
    }
)
#: account routes served by the admin shard (accounts are not sharded)
_ACCOUNT = frozenset({"register", "issue_key", "whoami"})
#: registry reads pinned to the task's preference list (like a pinned
#: query: the owning shard holds the records the entry was built from)
_REGISTRY_READS = frozenset({"predict", "model_meta", "sensitivity"})


@dataclass
class RouterOptions:
    """Front-end knobs (defaults match a small trusted deployment)."""

    #: copies of every record, including the primary (1 = no replication)
    replication: int = 2
    #: virtual nodes per shard on the consistent-hash ring
    vnodes: int = 64
    #: LRU capacity of the query cache (0 disables caching)
    cache_size: int = 256
    #: seconds a cached response stays valid
    cache_ttl_s: float = 30.0
    #: sustained requests/second allowed per API key (None = unlimited)
    rate_limit: float | None = None
    #: burst capacity of each key's token bucket
    burst: int = 20
    #: retry policy of the router's own shard connections
    retry: RetryPolicy | None = None
    #: replicas that must ack before an upload is acknowledged (W);
    #: 1 = legacy fire-and-forget acknowledgment
    write_quorum: int = 1
    #: replicas consulted by a task-pinned read (R); 1 = legacy
    #: primary-with-fallback, >1 adds newest-wins merge + read-repair
    read_quorum: int = 1
    #: seconds between background anti-entropy rounds (None = no thread;
    #: rounds can always be driven manually via ``anti_entropy_round``)
    anti_entropy_interval_s: float | None = None
    #: buffered hinted-handoff writes kept per unreachable shard; the
    #: oldest hints are dropped beyond this (anti-entropy still heals)
    max_hints_per_shard: int = 10_000
    #: remembered ``idempotency_key -> (uid, timestamp)`` stamps, so a
    #: client retry after a lost ack reuses its original stamp
    idempotency_cache_size: int = 4096

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if not 1 <= self.write_quorum <= self.replication:
            raise ValueError("write_quorum must be in [1, replication]")
        if not 1 <= self.read_quorum <= self.replication:
            raise ValueError("read_quorum must be in [1, replication]")
        if self.anti_entropy_interval_s is not None and (
            self.anti_entropy_interval_s <= 0
        ):
            raise ValueError("anti_entropy_interval_s must be positive")
        if self.max_hints_per_shard < 0:
            raise ValueError("max_hints_per_shard must be >= 0")


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: int, clock: Callable[[], float]) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def acquire(self) -> float:
        """Take one token; returns 0.0, or seconds until one is available."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


def _cache_key(value: Any) -> Any:
    """Cheap canonical hashable key of a request document.

    Replaces the old full-JSON serialization per lookup: mappings become
    key-sorted ``("d", ...)`` tuples, sequences ``("l", ...)`` tuples,
    and scalars ``(type-name, value)`` pairs — the type name keeps
    ``1`` / ``1.0`` / ``True`` (JSON-distinct requests) from colliding.
    """
    if isinstance(value, Mapping):
        return ("d",) + tuple(
            sorted((str(k), _cache_key(v)) for k, v in value.items())
        )
    if isinstance(value, (list, tuple)):
        return ("l",) + tuple(_cache_key(v) for v in value)
    if isinstance(value, (str, int, float, bool, type(None))):
        return (type(value).__name__, value)
    return (type(value).__name__, str(value))


class _QueryCache:
    """TTL+LRU response cache with shard-tag invalidation.

    Entries are deep-frozen once at :meth:`put` (rebuilt containers, so
    the entry shares nothing with the producer's response object) and
    every hit returns the same frozen view — zero per-hit copies, and a
    caller that tries to mutate a cached response gets ``TypeError``
    instead of silently poisoning the cache.
    """

    def __init__(self, size: int, ttl_s: float, clock: Callable[[], float]) -> None:
        self.size = int(size)
        self.ttl_s = float(ttl_s)
        self._clock = clock
        #: key -> (frozen response, expires_at, shard_tags)
        self._entries: OrderedDict[Any, tuple[Mapping, float, frozenset[str]]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Any) -> Mapping | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[1] >= self._clock():
                self._entries.move_to_end(key)
                self.hits += 1
                perf.incr("service_cache_hits")
                self._gauge_rate()
                return entry[0]  # frozen: immutable, safe to share
            if entry is not None:
                del self._entries[key]  # expired
            self.misses += 1
            perf.incr("service_cache_misses")
            self._gauge_rate()
            return None

    def put(self, key: Any, response: Mapping[str, Any], tags: frozenset[str]) -> None:
        if self.size <= 0:
            return
        with self._lock:
            # sweep expired entries first: ``get`` only drops the entry
            # it touched, so dead entries would otherwise count toward
            # the size bound and push *live* LRU entries out below
            now = self._clock()
            expired = [k for k, e in self._entries.items() if e[1] < now]
            for k in expired:
                del self._entries[k]
            self._entries[key] = (
                freeze(dict(response)),
                now + self.ttl_s,
                tags,
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.size:
                self._entries.popitem(last=False)
            perf.gauge("service_cache_size", len(self._entries))

    def invalidate(self, shards: frozenset[str]) -> int:
        """Drop every entry served from any of the given shards."""
        with self._lock:
            doomed = [k for k, e in self._entries.items() if e[2] & shards]
            for k in doomed:
                del self._entries[k]
            if doomed:
                perf.incr("service_cache_invalidations", len(doomed))
                perf.gauge("service_cache_size", len(self._entries))
            return len(doomed)

    def _gauge_rate(self) -> None:
        total = self.hits + self.misses
        if total:
            perf.gauge("service_cache_hit_rate", self.hits / total)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class CrowdRouter:
    """Protocol-compatible front-end over N crowd shards."""

    def __init__(
        self,
        shards: Mapping[str, Any],
        options: RouterOptions | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        next_uid: int = 1,
        write_clock: float = 0.0,
    ) -> None:
        """``shards`` maps shard name to its channel: a
        :class:`SimTransport`, a :class:`ServiceClient`, or anything with
        ``handle()`` (e.g. a bare :class:`CrowdShard`).

        ``next_uid``/``write_clock`` seed the router's global stamps; a
        router fronting recovered shards must start past the largest
        recovered uid/timestamp or new writes would collide with (and
        deduplicate against) pre-crash records.
        """
        if not shards:
            raise ValueError("router needs at least one shard")
        self.options = options if options is not None else RouterOptions()
        self._clock = clock
        retry = self.options.retry
        self._shards: dict[str, ServiceClient] = {
            name: (
                channel
                if isinstance(channel, ServiceClient)
                else ServiceClient(channel, retry=retry)
            )
            for name, channel in shards.items()
        }
        self.ring = ShardRing(list(self._shards), vnodes=self.options.vnodes)
        self._admin = next(iter(self._shards))
        self._cache = _QueryCache(
            self.options.cache_size, self.options.cache_ttl_s, clock
        )
        self._buckets: dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        self._uid_lock = threading.Lock()
        self._next_uid = max(int(next_uid), 1)
        self._write_clock = float(write_clock)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        #: idempotency_key -> (uid, timestamp) of the original stamp
        self._idempotency: OrderedDict[str, tuple[int, float]] = OrderedDict()
        #: shard name -> uid -> stamped upload request awaiting replay
        self._hints: dict[str, OrderedDict[int, dict[str, Any]]] = {}
        self._hints_lock = threading.Lock()
        self._membership_lock = threading.Lock()
        self._ae_stop: threading.Event | None = None
        self._ae_thread: threading.Thread | None = None
        if self.options.anti_entropy_interval_s is not None:
            self.start_anti_entropy(self.options.anti_entropy_interval_s)

    # -- plumbing ------------------------------------------------------------
    def _stamp(self, idempotency_key: str | None = None) -> tuple[int, float]:
        """Router-global uid + logical timestamp for one logical write.

        A remembered ``idempotency_key`` returns its *original* stamp:
        the retry of a write whose ack was lost re-runs the replica loop
        under the same uid, and the shards' uid dedup makes the replay
        a no-op wherever the first attempt already landed.
        """
        with self._uid_lock:
            if idempotency_key:
                stamp = self._idempotency.get(idempotency_key)
                if stamp is not None:
                    self._idempotency.move_to_end(idempotency_key)
                    return stamp
            uid = self._next_uid
            self._next_uid += 1
            self._write_clock += 1.0
            stamp = (uid, self._write_clock)
            if idempotency_key:
                self._idempotency[idempotency_key] = stamp
                while len(self._idempotency) > self.options.idempotency_cache_size:
                    self._idempotency.popitem(last=False)
            return stamp

    def _fanout(self, request: Mapping[str, Any]) -> dict[str, dict[str, Any]]:
        """Send ``request`` to every shard in parallel; name -> response."""
        perf.incr("service_fanouts")
        names = list(self._shards)
        if len(names) == 1:
            return {names[0]: self._shards[names[0]].handle(request)}
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=len(names), thread_name_prefix="crowd-fanout"
                )
            pool = self._pool
        futures = {n: pool.submit(self._shards[n].handle, request) for n in names}
        return {n: f.result() for n, f in futures.items()}

    def _throttle(self, api_key: str) -> dict[str, Any] | None:
        if self.options.rate_limit is None:
            return None
        with self._buckets_lock:
            bucket = self._buckets.get(api_key)
            if bucket is None:
                bucket = self._buckets[api_key] = TokenBucket(
                    self.options.rate_limit, self.options.burst, self._clock
                )
            wait = bucket.acquire()
        if wait <= 0.0:
            return None
        perf.incr("service_throttled")
        return {
            "ok": False,
            "error": "throttled",
            "message": "rate limit exceeded",
            "retry_after": round(wait, 6),
        }

    def close(self) -> None:
        """Stop background healing and the fan-out pool (idempotent)."""
        self.stop_anti_entropy()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "CrowdRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _shutdown_pool(self) -> None:
        """Drop the fan-out pool (membership changed its sizing)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    # -- dispatch ------------------------------------------------------------
    def handle(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Process one request dict; never raises (protocol contract)."""
        if not isinstance(request, Mapping):
            return _bad_request("request must be an object")
        perf.incr("service_requests")
        route = request.get("route")
        throttled = self._throttle(str(request.get("api_key", "")))
        if throttled is not None:
            return throttled

        if route in _ACCOUNT:
            return self._shards[self._admin].handle(request)
        if route == "upload":
            return self._route_upload(request)
        if route == "upload_model":
            return self._route_upload_model(request)
        if route == "register_problem":
            return self._route_register_problem(request)

        cache_key = None
        if route in _CACHEABLE and self._cache.size > 0:
            cache_key = _cache_key(request)
            cached = self._cache.get(cache_key)
            if cached is not None:
                return cached

        if route == "query":
            response, tags = self._route_query(request)
        elif route == "query_sql":
            response, tags = self._route_query_sql(request)
        elif route == "problems":
            response, tags = self._merge_problems(request)
        elif route == "leaderboard":
            response, tags = self._route_leaderboard(request)
        elif route == "contributors":
            response, tags = self._route_contributors(request)
        elif route == "query_models":
            response, tags = self._route_query_models(request)
        elif route in _REGISTRY_READS:
            response, tags = self._route_pinned_registry(request)
        elif route == "browse_html":
            return _bad_request(
                "browse_html is not served by the sharded router; "
                "render locally from a query"
            )
        else:
            return {
                "ok": False,
                "error": "not_found",
                "message": f"unknown route {route!r}",
            }

        if cache_key is not None and response.get("ok"):
            self._cache.put(cache_key, response, tags)
        return response

    # -- writes --------------------------------------------------------------
    def _route_upload(self, request: Mapping[str, Any]) -> dict[str, Any]:
        try:
            problem = request["problem_name"]
            task = dict(request["task_parameters"])
        except (KeyError, TypeError) as exc:
            return _bad_request(str(exc))
        key = shard_key(problem, task)
        prefs = self.ring.preference(key, self.options.replication)
        quorum = min(self.options.write_quorum, len(prefs))
        uid, ts = self._stamp(request.get("idempotency_key"))
        stamped = {k: v for k, v in request.items() if k not in ("uid", "timestamp")}
        stamped["uid"] = uid
        stamped["timestamp"] = ts
        acked = 0
        unreachable: list[str] = []
        rejected: dict[str, Any] | None = None
        for name in prefs:
            response = self._shards[name].handle(stamped)
            if response.get("ok"):
                acked += 1
            elif response.get("error") == "unavailable":
                unreachable.append(name)
            else:
                rejected = response  # auth / bad_request: same on every shard
                break
        self._cache.invalidate(frozenset(prefs))
        if rejected is not None:
            return rejected
        if acked == 0:
            return {
                "ok": False,
                "error": "unavailable",
                "message": f"no replica of {prefs} accepted the write",
                "replicas_acked": 0,
                "replicas_total": len(prefs),
            }
        # the write exists on >= 1 replica: buffer a hint per unreachable
        # replica so the record reaches full replication when they rejoin
        for name in unreachable:
            self._store_hint(name, stamped)
        if unreachable:
            perf.incr("service_underreplicated_writes")
        degraded = acked < quorum or acked < len(prefs)
        if acked < quorum:
            # quorum missed: never report a half-lost write as success —
            # the client may safely retry (idempotency token + shard uid
            # dedup make the replay exactly-once) or treat it as failed
            perf.incr("service_quorum_failures")
            return {
                "ok": False,
                "error": "quorum",
                "message": (
                    f"write {uid} acknowledged by {acked}/{len(prefs)} replicas "
                    f"(quorum {quorum})"
                ),
                "uid": uid,
                "status": "degraded",
                "replicas_acked": acked,
                "replicas_total": len(prefs),
            }
        return {
            "ok": True,
            "uid": uid,
            "status": "degraded" if degraded else "ok",
            "replicas_acked": acked,
            "replicas_total": len(prefs),
        }

    def _route_upload_model(self, request: Mapping[str, Any]) -> dict[str, Any]:
        try:
            key = shard_key(
                request["problem_name"], dict(request["task_parameters"])
            )
        except (KeyError, TypeError) as exc:
            return _bad_request(str(exc))
        primary = self.ring.primary(key)
        response = self._shards[primary].handle(request)
        self._cache.invalidate(frozenset([primary]))
        return response

    def _route_register_problem(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Broadcast a problem-space registration to every shard.

        Each shard needs the space document to build and serve its own
        keys, so the write is stamped (uid + timestamp, newest-wins on
        the shards) and sent everywhere; unreachable shards get a hint
        and converge when it replays (or via anti-entropy).
        """
        if not request.get("problem_name"):
            return _bad_request("register_problem needs a problem_name")
        uid, ts = self._stamp(request.get("idempotency_key"))
        stamped = {k: v for k, v in request.items() if k not in ("uid", "timestamp")}
        stamped["uid"] = uid
        stamped["timestamp"] = ts
        acked = 0
        unreachable: list[str] = []
        rejected: dict[str, Any] | None = None
        first_ok: dict[str, Any] | None = None
        for name in sorted(self._shards):
            response = self._shards[name].handle(stamped)
            if response.get("ok"):
                acked += 1
                if first_ok is None:
                    first_ok = response
            elif response.get("error") == "unavailable":
                unreachable.append(name)
            else:
                rejected = response  # bad space / auth: same everywhere
                break
        self._cache.invalidate(frozenset(self._shards))
        if rejected is not None:
            return rejected
        if acked == 0:
            return {
                "ok": False,
                "error": "unavailable",
                "message": "no shard accepted the problem registration",
            }
        for name in unreachable:
            self._store_hint(name, stamped)
        out = dict(first_ok or {})
        out.update(
            {
                "ok": True,
                "uid": uid,
                "replicas_acked": acked,
                "replicas_total": len(self._shards),
                "status": "degraded" if unreachable else "ok",
            }
        )
        return out

    def _route_pinned_registry(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        """Serve a registry read from the task key's preference list.

        Same placement as a task-pinned query: the primary owns the
        records the entry was fit on, replicas hold healed copies.  The
        response is tagged with the full preference list, so an upload
        to the key (which invalidates exactly those shards) also evicts
        any cached predictions built from the pre-upload data version.
        """
        task = request.get("task_parameters")
        problem = request.get("problem_name")
        if task is None or not problem:
            return (
                _bad_request("registry reads need problem_name and task_parameters"),
                frozenset(),
            )
        prefs = self.ring.preference(
            shard_key(problem, dict(task)), self.options.replication
        )
        for i, name in enumerate(prefs):
            response = self._shards[name].handle(request)
            if response.get("error") == "unavailable":
                continue
            if i > 0:
                perf.incr("service_replica_fallbacks")
            return response, frozenset(prefs)
        return (
            {
                "ok": False,
                "error": "unavailable",
                "message": f"all replicas of {prefs} are unreachable",
            },
            frozenset(prefs),
        )

    # -- reads ---------------------------------------------------------------
    def _route_query(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        task = request.get("task_parameters")
        problem = request.get("problem_name")
        if task is not None and problem:
            # task-pinned: the single owning shard has every record of
            # the key; fall back through the replicas when shards die
            prefs = self.ring.preference(
                shard_key(problem, dict(task)), self.options.replication
            )
            if min(self.options.read_quorum, len(prefs)) > 1:
                return self._quorum_pinned_read(request, prefs)
            for i, name in enumerate(prefs):
                response = self._shards[name].handle(request)
                if response.get("error") == "unavailable":
                    continue
                if i > 0:
                    perf.incr("service_replica_fallbacks")
                return response, frozenset(prefs)
            return (
                {
                    "ok": False,
                    "error": "unavailable",
                    "message": f"all replicas of {prefs} are unreachable",
                },
                frozenset(prefs),
            )
        docs, error, tags = self._gather_records(request)
        if error is not None:
            return error, tags
        docs.sort(key=lambda d: _sort_key(d.get("timestamp")))
        limit = request.get("limit")
        if limit is not None:
            docs = docs[: max(int(limit), 0)]
        return {"ok": True, "records": docs}, tags

    def _quorum_pinned_read(
        self, request: Mapping[str, Any], prefs: list[str]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        """Read R replicas, merge newest-wins, write repairs back.

        Visibility and ``require_success`` filtering are identical on
        every replica (record-level data travels with the doc), so a
        record returned by one replica but not another really is missing
        or stale there — except under ``limit``, where truncation makes
        the comparison unsound, so repairs are skipped.
        """
        quorum = min(self.options.read_quorum, len(prefs))
        consulted: list[tuple[str, dict[str, Any]]] = []
        skipped = 0
        for name in prefs:
            if len(consulted) == quorum:
                break
            response = self._shards[name].handle(request)
            if response.get("error") == "unavailable":
                skipped += 1
                continue
            if not response.get("ok"):
                return response, frozenset(prefs)
            consulted.append((name, response))
        if not consulted:
            return (
                {
                    "ok": False,
                    "error": "unavailable",
                    "message": f"all replicas of {prefs} are unreachable",
                },
                frozenset(prefs),
            )
        if skipped:
            perf.incr("service_replica_fallbacks")
        merged: dict[str, dict[str, Any]] = {}
        replica_view: dict[str, dict[str, Any]] = {}
        for name, response in consulted:
            view: dict[str, Any] = {}
            for doc in response.get("records", []):
                doc = dict(doc)
                doc.pop("_id", None)
                ident = record_ident(doc)
                view[ident] = doc.get("timestamp")
                current = merged.get(ident)
                if current is None or _sort_key(doc.get("timestamp")) > _sort_key(
                    current.get("timestamp")
                ):
                    merged[ident] = doc
            replica_view[name] = view
        docs = sorted(merged.values(), key=lambda d: _sort_key(d.get("timestamp")))
        limit = request.get("limit")
        if limit is None and len(consulted) > 1:
            repaired: set[str] = set()
            for name, _ in consulted:
                view = replica_view[name]
                stale = [
                    doc
                    for ident, doc in merged.items()
                    if ident not in view
                    or _sort_key(view[ident]) < _sort_key(doc.get("timestamp"))
                ]
                if not stale:
                    continue
                fix = self._shards[name].handle(
                    {"route": "replicate", "records": stale}
                )
                if fix.get("ok") and fix.get("applied", 0):
                    perf.incr("service_read_repairs", int(fix["applied"]))
                    repaired.add(name)
            if repaired:
                self._cache.invalidate(frozenset(repaired))
        if limit is not None:
            docs = docs[: max(int(limit), 0)]
        return {"ok": True, "records": docs}, frozenset(prefs)

    def _route_query_sql(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        try:
            q = SqlQuery.parse(request.get("sql", ""))
        except Exception as exc:
            return _bad_request(str(exc)), frozenset()
        docs, error, tags = self._gather_records(request)
        if error is not None:
            return error, tags
        if q.order_by is not None:
            docs.sort(
                key=lambda d: _sort_key(_get_path(d, q.order_by)),
                reverse=q.descending,
            )
        if q.limit is not None:
            docs = docs[: q.limit]
        return {"ok": True, "records": docs}, tags

    def _gather_records(
        self, request: Mapping[str, Any]
    ) -> tuple[list[dict], dict[str, Any] | None, frozenset[str]]:
        """Fan out a record-returning request; dedup replicas by uid.

        Divergent replicas (a stale node that rejoined before healing)
        may return different versions under one uid — the merge keeps
        the newest timestamp, matching read-repair's newest-wins rule.
        """
        responses = self._fanout(request)
        tags = frozenset(responses)
        docs: list[dict] = []
        position: dict[str, int] = {}
        reachable = 0
        for name, response in sorted(responses.items()):
            if response.get("error") == "unavailable":
                continue
            if not response.get("ok"):
                return [], response, tags  # auth/bad_request: uniform verdict
            reachable += 1
            for doc in response.get("records", []):
                doc.pop("_id", None)  # shard-local ids are meaningless here
                dedup = record_ident(doc)
                at = position.get(dedup)
                if at is None:
                    position[dedup] = len(docs)
                    docs.append(doc)
                elif _sort_key(doc.get("timestamp")) > _sort_key(
                    docs[at].get("timestamp")
                ):
                    docs[at] = doc
        if reachable == 0:
            return (
                [],
                {"ok": False, "error": "unavailable", "message": "no shard reachable"},
                tags,
            )
        return docs, None, tags

    def _merge_problems(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        responses = self._fanout(request)
        tags = frozenset(responses)
        names: set[str] = set()
        reachable = 0
        for _, response in sorted(responses.items()):
            if response.get("error") == "unavailable":
                continue
            if not response.get("ok"):
                return response, tags
            reachable += 1
            names.update(response.get("problems", []))
        if reachable == 0:
            return (
                {"ok": False, "error": "unavailable", "message": "no shard reachable"},
                tags,
            )
        return {"ok": True, "problems": sorted(names)}, tags

    def _dedup_problem_docs(
        self, request: Mapping[str, Any]
    ) -> tuple[list[dict] | None, dict[str, Any] | None, frozenset[str]]:
        """Deduplicated record documents of one problem (failures
        included) — aggregated as raw docs, no per-row record round-trip."""
        inner = {
            "route": "query",
            "api_key": request.get("api_key"),
            "problem_name": request.get("problem_name"),
            "require_success": False,
        }
        return self._gather_records(inner)

    def _route_leaderboard(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        docs, error, tags = self._dedup_problem_docs(request)
        if error is not None:
            return error, tags
        rows = leaderboard_from_docs(docs)
        return (
            {
                "ok": True,
                "rows": [
                    {
                        "task_parameters": r.task_parameters,
                        "best_output": r.best_output,
                        "best_configuration": r.best_configuration,
                        "best_owner": r.best_owner,
                        "n_samples": r.n_samples,
                        "n_failures": r.n_failures,
                    }
                    for r in rows
                ],
            },
            tags,
        )

    def _route_contributors(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        docs, error, tags = self._dedup_problem_docs(request)
        if error is not None:
            return error, tags
        return (
            {"ok": True, "contributors": contributor_stats_from_docs(docs)},
            tags,
        )

    def _route_query_models(
        self, request: Mapping[str, Any]
    ) -> tuple[dict[str, Any], frozenset[str]]:
        responses = self._fanout(request)
        tags = frozenset(responses)
        models: list[dict] = []
        reachable = 0
        for _, response in sorted(responses.items()):
            if response.get("error") == "unavailable":
                continue
            if not response.get("ok"):
                return response, tags
            reachable += 1
            models.extend(response.get("models", []))
        if reachable == 0:
            return (
                {"ok": False, "error": "unavailable", "message": "no shard reachable"},
                tags,
            )
        return {"ok": True, "models": models}, tags

    # -- hinted handoff ------------------------------------------------------
    def _store_hint(self, name: str, stamped: Mapping[str, Any]) -> None:
        """Buffer a stamped write for an unreachable replica."""
        cap = self.options.max_hints_per_shard
        if cap == 0:
            perf.incr("service_hints_dropped")
            return
        dropped = 0
        with self._hints_lock:
            queue = self._hints.setdefault(name, OrderedDict())
            queue[int(stamped["uid"])] = dict(stamped)
            while len(queue) > cap:
                queue.popitem(last=False)
                dropped += 1
        perf.incr("service_hints_stored")
        if dropped:
            perf.incr("service_hints_dropped", dropped)
        self._gauge_hints()

    def hints_pending(self, name: str | None = None) -> int:
        """Buffered hinted-handoff writes (for one shard or all)."""
        with self._hints_lock:
            if name is not None:
                return len(self._hints.get(name, ()))
            return sum(len(q) for q in self._hints.values())

    def replay_hints(self, name: str | None = None) -> int:
        """Deliver buffered hints; returns how many were applied.

        Wired to :meth:`SimTransport.on_up` by the service builder, so a
        revived shard receives its missed writes immediately.  A replay
        stops at the first still-unreachable delivery (the shard is down
        again); hints rejected outright (e.g. a revoked key) are dropped.
        """
        with self._hints_lock:
            names = (
                [name]
                if name is not None
                else sorted(n for n, q in self._hints.items() if q)
            )
        replayed: set[str] = set()
        n_replayed = 0
        for shard_name in names:
            client = self._shards.get(shard_name)
            if client is None:  # shard left the cluster: hints are moot
                with self._hints_lock:
                    self._hints.pop(shard_name, None)
                continue
            while True:
                with self._hints_lock:
                    queue = self._hints.get(shard_name)
                    if not queue:
                        break
                    uid, stamped = next(iter(queue.items()))
                response = client.handle(stamped)
                if response.get("error") == "unavailable":
                    break  # still down: keep the remaining hints
                with self._hints_lock:
                    queue = self._hints.get(shard_name)
                    if queue is not None:
                        queue.pop(uid, None)
                if response.get("ok"):
                    n_replayed += 1
                    perf.incr("service_hints_replayed")
                    replayed.add(shard_name)
        if replayed:
            self._cache.invalidate(frozenset(replayed))
        self._gauge_hints()
        return n_replayed

    def _gauge_hints(self) -> None:
        perf.gauge("service_hints_pending", self.hints_pending())

    # -- anti-entropy --------------------------------------------------------
    def anti_entropy_round(self, *, cleanup: bool = False) -> dict[str, Any]:
        """One digest-exchange round across the cluster.

        Every reachable shard reports a digest per ``shard_key`` bucket
        of its journaled records.  For each bucket whose preference-list
        replicas disagree (or miss it entirely), the round pulls the
        bucket from every holder, merges newest-wins by
        ``(uid, timestamp)``, and streams the merged records to each
        replica.  With ``cleanup`` (used by shard handoff), a bucket
        held by a shard outside its preference list is dropped — but
        only once every replica in the list holds the identical digest,
        so a copy is never destroyed before the ring's owners have it.

        Pending hints are replayed first: a freshly revived shard takes
        its buffered writes before digests are compared.
        """
        self.replay_hints()
        digests: dict[str, dict[str, dict[str, Any]]] = {}
        for name in sorted(self._shards):
            response = self._shards[name].handle({"route": "digest"})
            if response.get("ok"):
                digests[name] = response.get("digests", {})
        healed = 0
        dropped = 0
        touched: set[str] = set()
        all_keys = sorted({key for d in digests.values() for key in d})
        for key in all_keys:
            collection, ring_key = split_bucket_key(key)
            if collection == REGISTRY_PROBLEMS:
                # problem-space docs are broadcast state: every shard is
                # a replica, so healing converges them cluster-wide
                prefs = sorted(self._shards)
            else:
                prefs = self.ring.preference(ring_key, self.options.replication)
            holders = {
                name: digests[name][key]["digest"]
                for name in digests
                if key in digests[name]
            }
            reachable_prefs = [n for n in prefs if n in digests]
            pref_digests = {holders.get(n) for n in reachable_prefs}
            extras = sorted(n for n in holders if n not in prefs)
            consistent = (
                len(reachable_prefs) == len(prefs)
                and len(pref_digests) == 1
                and None not in pref_digests
            )
            if consistent and all(
                holders[n] == next(iter(pref_digests)) for n in extras
            ):
                if cleanup:
                    for name in extras:
                        response = self._shards[name].handle(
                            {"route": "drop_bucket", "key": key}
                        )
                        if response.get("ok") and response.get("dropped", 0):
                            dropped += int(response["dropped"])
                            touched.add(name)
                continue
            merged: dict[str, dict[str, Any]] = {}
            for name in sorted(set(holders) | set(reachable_prefs)):
                response = self._shards[name].handle(
                    {"route": "fetch", "keys": [key]}
                )
                if not response.get("ok"):
                    continue
                for doc in response.get("buckets", {}).get(key, []):
                    ident = record_ident(doc)
                    current = merged.get(ident)
                    if current is None or _sort_key(
                        doc.get("timestamp")
                    ) > _sort_key(current.get("timestamp")):
                        merged[ident] = doc
            if not merged:
                continue
            records = sorted(
                merged.values(),
                key=lambda d: (_sort_key(d.get("timestamp")), record_ident(d)),
            )
            bucket_applied = 0
            replicated_all = len(reachable_prefs) == len(prefs)
            for name in reachable_prefs:
                response = self._shards[name].handle(
                    {"route": "replicate", "records": records, "collection": collection}
                )
                if not response.get("ok"):
                    replicated_all = False
                    continue
                if response.get("applied", 0):
                    bucket_applied += int(response["applied"])
                    healed += int(response["applied"])
                    touched.add(name)
            if cleanup and extras and replicated_all and bucket_applied == 0:
                # every replica already held the merged bucket (zero
                # applies), so the extras' records — all part of the
                # merge — are provably covered: safe to drop even though
                # a stale extra's digest will never match the owners'
                for name in extras:
                    response = self._shards[name].handle(
                        {"route": "drop_bucket", "key": key}
                    )
                    if response.get("ok") and response.get("dropped", 0):
                        dropped += int(response["dropped"])
                        touched.add(name)
        if touched:
            self._cache.invalidate(frozenset(touched))
        perf.incr("service_antientropy_rounds")
        if healed:
            perf.incr("service_antientropy_records_healed", healed)
        return {
            "healed": healed,
            "dropped": dropped,
            "buckets": len(all_keys),
            "reachable": sorted(digests),
        }

    def start_anti_entropy(self, interval_s: float) -> None:
        """Run :meth:`anti_entropy_round` every ``interval_s`` seconds."""
        if self._ae_thread is not None:
            return
        stop = threading.Event()

        def _loop() -> None:
            while not stop.wait(interval_s):
                try:
                    self.anti_entropy_round()
                except Exception:  # never kill the daemon on one bad round
                    perf.incr("service_antientropy_errors")

        self._ae_stop = stop
        self._ae_thread = threading.Thread(
            target=_loop, name="crowd-antientropy", daemon=True
        )
        self._ae_thread.start()

    def stop_anti_entropy(self) -> None:
        if self._ae_thread is None:
            return
        assert self._ae_stop is not None
        self._ae_stop.set()
        self._ae_thread.join()
        self._ae_thread = None
        self._ae_stop = None

    # -- membership ----------------------------------------------------------
    def add_shard(self, name: str, channel: Any, *, rebalance: bool = True) -> dict:
        """Join a shard: rebuild the ring and stream its buckets to it.

        With ``rebalance`` (the default) the join blocks until handoff
        converges: every bucket the new shard now owns has been streamed
        in and copies on shards that lost ownership are dropped.
        """
        with self._membership_lock:
            if name in self._shards:
                raise ValueError(f"shard {name!r} already in the cluster")
            retry = self.options.retry
            self._shards[name] = (
                channel
                if isinstance(channel, ServiceClient)
                else ServiceClient(channel, retry=retry)
            )
            self.ring = ShardRing(list(self._shards), vnodes=self.options.vnodes)
            self._shutdown_pool()
            self._cache.invalidate(frozenset(self._shards))
            return self.rebalance() if rebalance else {}

    def remove_shard(self, name: str, *, graceful: bool = True) -> dict:
        """Leave: stream the shard's buckets out first when graceful.

        Graceful removal recomputes the ring without the shard while it
        is still connected, then runs handoff rounds — its buckets are
        fetched from it and replicated to the new owners before it is
        disconnected.  Non-graceful removal (a crashed node) skips the
        streaming; the surviving replicas restore the replication factor
        on the next anti-entropy round.
        """
        with self._membership_lock:
            if name not in self._shards:
                raise KeyError(f"unknown shard {name!r}")
            if len(self._shards) == 1:
                raise ValueError("cannot remove the last shard")
            survivors = [n for n in self._shards if n != name]
            self.ring = ShardRing(survivors, vnodes=self.options.vnodes)
            stats = self.rebalance() if graceful else {}
            with self._hints_lock:
                self._hints.pop(name, None)
            del self._shards[name]
            if self._admin == name:
                self._admin = next(iter(self._shards))
            self._shutdown_pool()
            self._cache.invalidate(frozenset(self._shards) | {name})
            self._gauge_hints()
            return stats

    def rebalance(self, max_rounds: int = 5) -> dict:
        """Anti-entropy with cleanup until the placement is quiescent."""
        totals = {"healed": 0, "dropped": 0, "rounds": 0}
        for _ in range(max_rounds):
            stats = self.anti_entropy_round(cleanup=True)
            totals["healed"] += stats["healed"]
            totals["dropped"] += stats["dropped"]
            totals["rounds"] += 1
            if stats["healed"] == 0 and stats["dropped"] == 0:
                break
        return totals

    def shard_names(self) -> list[str]:
        return list(self._shards)

    def routes(self) -> list[str]:
        return sorted(
            _ACCOUNT
            | _CACHEABLE
            | {"upload", "upload_model", "register_problem"}
        )


def _bad_request(message: str) -> dict[str, Any]:
    return {"ok": False, "error": "bad_request", "message": message}
