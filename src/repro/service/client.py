"""Client side of the crowd service: retries and a repository adapter.

:class:`ServiceClient` gives any consumer of the request/response
protocol (:class:`~repro.engine.stream.CrowdStreamer`, the router's own
shard connections, user code) a reliable ``handle()`` on top of an
unreliable channel: transport faults and ``throttled`` backpressure
responses are retried with the engine's bounded exponential backoff
(:class:`~repro.engine.faults.RetryPolicy`), honoring the server's
``retry_after`` hint.  Exhausted retries surface as an ``unavailable``
error response — protocol shaped, never an exception — so callers like
the streamer degrade exactly as they do against a rejecting server.

Uploads carry a client-generated **idempotency token**, stamped once
per logical write and shared by every retry attempt.  Without it, an
ack lost *after* the router applied the write (the transport's
response-fault model) would make the retry a brand-new write with a
fresh router uid — two copies of one evaluation.  The router maps the
token back to the original uid/timestamp stamp and the shards
deduplicate by uid, so N faulted attempts store exactly one record.

:class:`RemoteRepository` adapts a :class:`ServiceClient` to the subset
of the :class:`~repro.crowd.repository.CrowdRepository` surface the
crowd-tuning API uses, so a :class:`~repro.crowd.api.CrowdClient` — and
with it the whole TLA query path (``query_source_data`` feeding
:class:`~repro.tla.tuner.TransferTuner`) — runs unchanged over the
sharded service.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections.abc import Mapping
from typing import Any, Protocol

from ..core import perf
from ..crowd.records import PerformanceRecord
from ..crowd.users import AuthError, User
from ..engine.faults import RetryPolicy
from .transport import SimTransport, TransportError

__all__ = ["ServiceClient", "RemoteRepository", "Endpoint"]

#: deployment-unique client tags for idempotency tokens (deterministic:
#: tags follow client construction order, never wall-clock or pids)
_client_tags = itertools.count(1)


class Endpoint(Protocol):  # pragma: no cover - typing helper
    """Anything that maps a request dict to a response dict."""

    def handle(self, request: Mapping[str, Any]) -> dict[str, Any]: ...


class ServiceClient:
    """Bounded-retry client over a transport, router, or server.

    ``endpoint`` may be a :class:`SimTransport` (``request()``) or any
    object with ``handle()`` (a :class:`CrowdRouter`,
    :class:`CrowdServer`, or another client).
    """

    def __init__(
        self,
        endpoint: SimTransport | Endpoint,
        *,
        retry: RetryPolicy | None = None,
        sleep=time.sleep,
    ) -> None:
        self._send = (
            endpoint.request
            if isinstance(endpoint, SimTransport)
            else endpoint.handle
        )
        self.endpoint = endpoint
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        self.n_retries = 0
        self._tag = next(_client_tags)
        self._idem_counter = itertools.count(1)
        self._idem_lock = threading.Lock()

    def _stamp_idempotency(self, request: Mapping[str, Any]) -> Mapping[str, Any]:
        """Give an upload one token for *all* its retry attempts.

        Router-stamped requests (``uid`` present) are the router's own
        replica writes — already idempotent by uid — and a caller's
        explicit token is preserved.
        """
        if (
            request.get("route") != "upload"
            or "uid" in request
            or "idempotency_key" in request
        ):
            return request
        with self._idem_lock:
            token = f"c{self._tag}-{next(self._idem_counter)}"
        stamped = dict(request)
        stamped["idempotency_key"] = token
        return stamped

    def handle(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Send one request, retrying faults and throttles; never raises."""
        request = self._stamp_idempotency(request)
        attempt = 0
        while True:
            try:
                response = self._send(request)
            except TransportError as exc:
                if not self.retry.allows(attempt):
                    perf.incr("service_client_gaveups")
                    return {
                        "ok": False,
                        "error": "unavailable",
                        "message": str(exc),
                        "attempts": attempt + 1,
                    }
                self._sleep(self.retry.backoff_s(attempt))
                attempt += 1
                self.n_retries += 1
                perf.incr("service_client_retries")
                continue
            if (
                isinstance(response, Mapping)
                and response.get("error") == "throttled"
                and self.retry.allows(attempt)
            ):
                wait = float(response.get("retry_after", 0.0))
                self._sleep(min(max(wait, self.retry.backoff_s(attempt)),
                                self.retry.cap_s))
                attempt += 1
                self.n_retries += 1
                perf.incr("service_client_retries")
                continue
            return dict(response)


class _RemoteUsers:
    """``repository.users`` shim: authentication via the whoami route."""

    def __init__(self, client: ServiceClient) -> None:
        self._client = client

    def authenticate(self, api_key: str) -> User:
        response = self._client.handle({"route": "whoami", "api_key": api_key})
        if not response.get("ok"):
            raise AuthError(response.get("message", "authentication failed"))
        return User(
            username=response["username"],
            email=response.get("email", ""),
            groups=set(response.get("groups", [])),
        )


class RemoteRepository:
    """The crowd repository as seen through the service protocol.

    Implements the methods :class:`~repro.crowd.api.CrowdClient` calls
    (``users.authenticate``, ``query``, ``query_sql``, ``upload``,
    ``problems``), translating protocol errors back into the exceptions
    the in-process repository raises.
    """

    def __init__(self, endpoint: ServiceClient | SimTransport | Endpoint) -> None:
        self.client = (
            endpoint if isinstance(endpoint, ServiceClient) else ServiceClient(endpoint)
        )
        self.users = _RemoteUsers(self.client)

    def _call(self, request: Mapping[str, Any]) -> dict[str, Any]:
        response = self.client.handle(request)
        if response.get("ok"):
            return response
        kind = response.get("error")
        message = response.get("message", str(response))
        if kind == "auth":
            raise AuthError(message)
        raise RuntimeError(f"crowd service error ({kind}): {message}")

    def query(
        self,
        api_key: str,
        *,
        problem_name: str | None = None,
        problem_space: Mapping[str, Any] | None = None,
        configuration_space: Mapping[str, Any] | None = None,
        task_parameters: Mapping[str, Any] | None = None,
        require_success: bool = True,
        limit: int | None = None,
    ) -> list[PerformanceRecord]:
        request: dict[str, Any] = {
            "route": "query",
            "api_key": api_key,
            "require_success": require_success,
        }
        if problem_name is not None:
            request["problem_name"] = problem_name
        if problem_space:
            request["problem_space"] = dict(problem_space)
        if configuration_space:
            request["configuration_space"] = dict(configuration_space)
        if task_parameters is not None:
            request["task_parameters"] = dict(task_parameters)
        if limit is not None:
            request["limit"] = limit
        response = self._call(request)
        return [PerformanceRecord.from_doc(d) for d in response["records"]]

    def query_sql(self, api_key: str, sql: str) -> list[PerformanceRecord]:
        response = self._call({"route": "query_sql", "api_key": api_key, "sql": sql})
        return [PerformanceRecord.from_doc(d) for d in response["records"]]

    def upload(
        self,
        record: PerformanceRecord,
        api_key: str,
        *,
        timestamp: float | None = None,
    ) -> int:
        request = {
            "route": "upload",
            "api_key": api_key,
            "problem_name": record.problem_name,
            "task_parameters": dict(record.task_parameters),
            "tuning_parameters": dict(record.tuning_parameters),
            "output": record.output,
            "machine_configuration": dict(record.machine_configuration),
            "software_configuration": dict(record.software_configuration),
            "accessibility": record.accessibility.to_dict(),
        }
        response = self._call(request)
        return int(response["uid"])

    def problems(self, api_key: str) -> list[str]:
        return list(self._call({"route": "problems", "api_key": api_key})["problems"])

    # -- registry routes -----------------------------------------------------
    # These return the RAW response dict (ok or not): the crowd client
    # treats the registry as an optimization and decides for itself
    # whether to fall back to fitting locally — an exception here would
    # turn a missing registry into a query failure.

    def register_problem(
        self, api_key: str, problem_name: str, problem_space: Mapping[str, Any]
    ) -> dict[str, Any]:
        return self.client.handle(
            {
                "route": "register_problem",
                "api_key": api_key,
                "problem_name": problem_name,
                "problem_space": dict(problem_space),
            }
        )

    def predict(
        self,
        api_key: str,
        problem_name: str,
        task_parameters: Mapping[str, Any],
        configurations: list[Mapping[str, Any]],
    ) -> dict[str, Any]:
        return self.client.handle(
            {
                "route": "predict",
                "api_key": api_key,
                "problem_name": problem_name,
                "task_parameters": dict(task_parameters),
                "configurations": [dict(c) for c in configurations],
            }
        )

    def model_meta(
        self,
        api_key: str,
        problem_name: str,
        task_parameters: Mapping[str, Any],
        *,
        include_model: bool = False,
    ) -> dict[str, Any]:
        return self.client.handle(
            {
                "route": "model_meta",
                "api_key": api_key,
                "problem_name": problem_name,
                "task_parameters": dict(task_parameters),
                "include_model": include_model,
            }
        )

    def sensitivity(
        self,
        api_key: str,
        problem_name: str,
        task_parameters: Mapping[str, Any],
        *,
        n_base: int = 1024,
        n_bootstrap: int = 100,
        seed: int | None = None,
        include_model: bool = False,
    ) -> dict[str, Any]:
        return self.client.handle(
            {
                "route": "sensitivity",
                "api_key": api_key,
                "problem_name": problem_name,
                "task_parameters": dict(task_parameters),
                "n_base": n_base,
                "n_bootstrap": n_bootstrap,
                "seed": seed,
                "include_model": include_model,
            }
        )
