"""`repro.service` — the sharded, durable, cached crowd-serving layer.

The paper's crowd repository is one shared service (gptune.lbl.gov)
that every tuner reads from and writes to.  This package turns the
transport-free :class:`~repro.crowd.server.CrowdServer` into a
multi-node deployment able to take concurrent traffic:

* :mod:`~repro.service.shard` — consistent-hash sharding of performance
  records by ``(problem_name, task)`` over N :class:`CrowdShard` nodes
  with K-way replication,
* :mod:`~repro.service.wal` — per-shard write-ahead log + snapshots;
  a killed shard recovers bit-identical state from disk,
* :mod:`~repro.service.router` — protocol-compatible front-end: smart
  routing, parallel cross-shard fan-out with exact deduplication,
  token-bucket backpressure, TTL+LRU query caching,
* :mod:`~repro.service.transport` — deterministic simulated RPC with
  fault injection, and the retrying :class:`ServiceClient` /
  :class:`RemoteRepository` adapters that let
  :class:`~repro.engine.stream.CrowdStreamer` and the TLA query path
  run unchanged on top.

:func:`build_service` wires a whole deployment in one call::

    from repro.service import build_service

    svc = build_service(4, replication=2, data_dir="/tmp/crowd")
    username, key = svc.register_user("alice", "alice@hpc.org")
    svc.client.handle({"route": "upload", "api_key": key, ...})
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..crowd.users import UserRegistry
from ..engine.faults import RetryPolicy
from ..registry import REGISTRY_PROBLEMS, ModelRegistry, RegistryOptions
from .client import RemoteRepository, ServiceClient
from .router import CrowdRouter, RouterOptions, TokenBucket
from .shard import CrowdShard, ShardRing, shard_key
from .transport import SimTransport, TransportError
from .wal import WriteAheadLog, load_shard_state

__all__ = [
    "CrowdRouter",
    "CrowdService",
    "CrowdShard",
    "ModelRegistry",
    "RegistryOptions",
    "RemoteRepository",
    "RouterOptions",
    "ServiceClient",
    "ShardRing",
    "SimTransport",
    "TokenBucket",
    "TransportError",
    "WriteAheadLog",
    "build_service",
    "load_shard_state",
    "shard_key",
]


@dataclass
class CrowdService:
    """One wired deployment: shards, transports, router, client."""

    router: CrowdRouter
    shards: dict[str, CrowdShard]
    transports: dict[str, SimTransport]
    users: UserRegistry
    #: registry policy shards were built with (None = no registry);
    #: restarts and joins attach the same configuration
    registry: RegistryOptions | None = None
    client: ServiceClient = field(init=False)

    def __post_init__(self) -> None:
        self.client = ServiceClient(self.router)
        self._closed = False

    def register_user(self, username: str, email: str) -> tuple[str, str]:
        """Register through the service; returns ``(username, api_key)``."""
        response = self.client.handle(
            {"route": "register", "username": username, "email": email}
        )
        if not response.get("ok"):
            raise RuntimeError(f"registration failed: {response.get('message')}")
        return response["username"], response["api_key"]

    def repository_view(self) -> RemoteRepository:
        """A :class:`RemoteRepository` over this service (TLA/API use)."""
        return RemoteRepository(self.client)

    def kill_shard(self, name: str) -> None:
        """Simulate a shard crash: its transport hard-fails from now on."""
        self.transports[name].down = True

    def revive_shard(self, name: str) -> None:
        """Bring a killed shard back; the router replays its hints.

        (The transport's ``on_up`` hook fires the router's hinted-handoff
        replay — wired by :func:`build_service` / :meth:`add_shard`.)
        """
        self.transports[name].down = False

    def restart_shard(self, name: str) -> None:
        """Crash-restart a shard from its data directory.

        The in-memory node is discarded and rebuilt by WAL/snapshot
        recovery — the simulation of a real process restart.  Anything
        the shard missed while down (or lost to an old snapshot image)
        is healed by hint replay and the next anti-entropy round.
        """
        old = self.shards[name]
        if old.data_dir is None:
            raise ValueError(f"shard {name!r} is memory-only; nothing to recover")
        old.close()
        shard = CrowdShard(
            name,
            old.data_dir,
            users=self.users,
            snapshot_every=old.snapshot_every,
            fsync_every=old._wal.fsync_every if old._wal is not None else 1,
            registry=self.registry,
        )
        self.shards[name] = shard
        self.transports[name].target = shard.handle

    def add_shard(
        self,
        name: str | None = None,
        *,
        data_dir: str | Path | None = None,
        latency_s: float = 0.0,
        fault_rate: float = 0.0,
        seed: int = 0,
        snapshot_every: int = 256,
        fsync_every: int = 1,
        rebalance: bool = True,
    ) -> str:
        """Join a new shard node and stream its buckets to it."""
        if name is None:
            i = len(self.shards)
            while f"shard-{i}" in self.shards:
                i += 1
            name = f"shard-{i}"
        if name in self.shards:
            raise ValueError(f"shard {name!r} already exists")
        shard = CrowdShard(
            name,
            data_dir,
            users=self.users,
            snapshot_every=snapshot_every,
            fsync_every=fsync_every,
            registry=self.registry,
        )
        transport = SimTransport(
            shard.handle,
            name,
            latency_s=latency_s,
            fault_rate=fault_rate,
            seed=seed,
        )
        transport.on_up(self.router.replay_hints)
        self.shards[name] = shard
        self.transports[name] = transport
        self.router.add_shard(name, transport, rebalance=rebalance)
        return name

    def remove_shard(self, name: str, *, graceful: bool = True) -> None:
        """Leave: graceful removal streams the shard's data out first."""
        self.router.remove_shard(name, graceful=graceful)
        self.transports.pop(name, None)
        shard = self.shards.pop(name)
        shard.close()

    def snapshot_all(self) -> None:
        for shard in self.shards.values():
            shard.snapshot()

    def total_records(self) -> int:
        """Stored record count summed over shards (replicas included)."""
        return sum(s.count() for s in self.shards.values())

    def close(self) -> None:
        """Shut the whole deployment down (idempotent).

        Stops the router's anti-entropy thread and fan-out pool, every
        shard's registry-builder thread, and closes every WAL.  Safe to
        call repeatedly and after partial teardown — fabric runs and
        tests can always ``with build_service(...) as svc:`` without
        leaking daemon threads across test boundaries.
        """
        if self._closed:
            return
        self._closed = True
        self.router.close()
        for shard in self.shards.values():
            shard.close()

    def __enter__(self) -> "CrowdService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_service(
    n_shards: int = 4,
    *,
    replication: int = 2,
    write_quorum: int = 1,
    read_quorum: int = 1,
    anti_entropy_interval_s: float | None = None,
    data_dir: str | Path | None = None,
    latency_s: float = 0.0,
    fault_rate: float = 0.0,
    seed: int = 0,
    snapshot_every: int = 256,
    fsync_every: int = 1,
    options: RouterOptions | None = None,
    retry: RetryPolicy | None = None,
    users: UserRegistry | None = None,
    registry: RegistryOptions | None = None,
) -> CrowdService:
    """Build an N-shard crowd service behind one router.

    With ``data_dir``, shard ``i`` persists under ``<data_dir>/shard-i``
    (WAL + snapshots); without it the deployment is memory-only.  All
    shards share one user registry — accounts are not sharded.

    ``write_quorum``/``read_quorum`` set the W/R of the replicated
    write/read paths; the ``(1, 1)`` default reproduces the original
    fire-and-forget behavior.  ``anti_entropy_interval_s`` starts the
    router's background healing thread (rounds can always be driven
    manually via ``svc.router.anti_entropy_round()``).
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    users = users if users is not None else UserRegistry()
    if options is None:
        options = RouterOptions(
            replication=replication,
            retry=retry,
            write_quorum=write_quorum,
            read_quorum=read_quorum,
            anti_entropy_interval_s=anti_entropy_interval_s,
        )
    shards: dict[str, CrowdShard] = {}
    transports: dict[str, SimTransport] = {}
    for i in range(n_shards):
        name = f"shard-{i}"
        shard_dir = Path(data_dir) / name if data_dir is not None else None
        shard = CrowdShard(
            name,
            shard_dir,
            users=users,
            snapshot_every=snapshot_every,
            fsync_every=fsync_every,
            registry=registry,
        )
        shards[name] = shard
        transports[name] = SimTransport(
            shard.handle,
            name,
            latency_s=latency_s,
            fault_rate=fault_rate,
            seed=seed + i,
        )
    # resume the router's global stamps past everything the shards
    # recovered from disk: a fresh counter would re-issue old uids and
    # new uploads would dedup-collide with pre-crash records
    max_uid, max_ts = 0, 0.0
    for shard in shards.values():
        for coll in ("performance_records", REGISTRY_PROBLEMS):
            for doc in shard.repository.store[coll].find({}, frozen=True):
                max_uid = max(max_uid, int(doc.get("uid", 0) or 0))
                max_ts = max(max_ts, float(doc.get("timestamp", 0.0) or 0.0))
    router = CrowdRouter(transports, options, next_uid=max_uid + 1, write_clock=max_ts)
    # hinted handoff: the moment a shard's transport comes back up, the
    # router replays every write buffered for it while it was down
    for transport in transports.values():
        transport.on_up(router.replay_hints)
    return CrowdService(
        router=router,
        shards=shards,
        transports=transports,
        users=users,
        registry=registry,
    )
