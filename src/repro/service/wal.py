"""Per-shard durability: write-ahead log + snapshots + crash recovery.

Each :class:`~repro.service.shard.CrowdShard` owns one data directory::

    <data_dir>/
        wal.jsonl            append-only journal, one JSON op per line
        snapshot.json        latest full DocumentStore image (atomic)

Every mutation the shard's :class:`~repro.crowd.database.DocumentStore`
applies is journaled *before* the request is acknowledged (the observer
runs inside the collection lock, ahead of the response leaving the
shard), each line carrying a monotonically increasing sequence number.
A snapshot embeds the sequence number of the last op it contains;
recovery loads the snapshot and replays only the WAL tail with
``seq > snapshot.wal_seq`` — so a crash *anywhere* (mid-append, between
snapshot and WAL truncation, mid-truncation) recovers to exactly the
acknowledged state:

* a torn final WAL line (the classic power-cut artifact) is detected and
  discarded (``wal_torn_tail`` counter) — the op it belonged to was
  never acknowledged,
* replay is idempotent: ops already covered by the snapshot are skipped
  by sequence number even if truncation never ran,
The journal and snapshots cover the *whole* document store, not just
performance records: ops carry their collection name and snapshots are
full store images, so collections added later — the frozen-model
registry's ``registry_models`` / ``registry_problems`` — inherit crash
durability with no WAL changes.  (Registry index creation, like the
repository's, runs before the shard installs its observer and is never
journaled; snapshots carry index names and the registry re-creates its
indexes at construction, so they exist after any recovery path.)

* snapshots are written to a temp file and ``os.replace``-d into place,
  so a crash mid-snapshot leaves the previous snapshot intact; the
  parent directory is fsynced after the rename (POSIX), so a crash
  right after :func:`write_snapshot` returns cannot roll the rename
  back and resurrect a pre-snapshot image older than the truncated WAL
  expects.

Perf counters: ``wal_appends``, ``wal_fsyncs``, ``wal_snapshots``,
``wal_replayed``, ``wal_torn_tail``.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Mapping

from ..core import perf
from ..crowd.database import DocumentStore

__all__ = ["WriteAheadLog", "load_shard_state", "read_wal", "write_json_atomic"]

_WAL_NAME = "wal.jsonl"
_SNAP_NAME = "snapshot.json"
_SNAP_FORMAT = "gptunecrowd-shard-snapshot-v1"


class WriteAheadLog:
    """Append-only JSONL journal with group-able fsync.

    ``fsync_every=1`` (the default) syncs every append — the durable
    choice.  Larger values amortize the sync over batches of appends at
    the cost of possibly losing the unsynced tail on an OS-level crash
    (a process crash alone loses nothing: appends always reach the OS).
    """

    def __init__(self, path: str | Path, *, fsync_every: int = 1) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = Path(path)
        self.fsync_every = int(fsync_every)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_tail()
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._since_sync = 0
        self._seq = 0  # last sequence number handed out

    def _repair_tail(self) -> None:
        """Truncate a torn final line before reopening for append.

        The fragment belongs to an op that was never acknowledged
        (recovery already discarded it); left in place, the next append
        would glue onto it and corrupt a *valid* entry.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        with open(self.path, "r+b") as fh:
            fh.truncate(data.rfind(b"\n") + 1)
            os.fsync(fh.fileno())

    @property
    def seq(self) -> int:
        """Sequence number of the most recently appended op."""
        with self._lock:
            return self._seq

    def start_from(self, seq: int) -> None:
        """Continue numbering after ``seq`` (recovery sets this)."""
        with self._lock:
            self._seq = max(self._seq, int(seq))

    def append(self, op: Mapping[str, Any]) -> int:
        """Journal one op; returns its sequence number."""
        with self._lock:
            self._seq += 1
            entry = {"seq": self._seq, **op}
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
            self._fh.flush()
            self._since_sync += 1
            if self._since_sync >= self.fsync_every:
                os.fsync(self._fh.fileno())
                self._since_sync = 0
                perf.incr("wal_fsyncs")
            perf.incr("wal_appends")
            return self._seq

    def append_many(self, ops: list[Mapping[str, Any]]) -> int:
        """Journal a batch of ops under one lock acquisition, one buffer
        write and one fsync accounting pass; returns the last sequence
        number (or the current one for an empty batch)."""
        with self._lock:
            if not ops:
                return self._seq
            lines = []
            for op in ops:
                self._seq += 1
                lines.append(json.dumps({"seq": self._seq, **op}, sort_keys=True))
            self._fh.write("\n".join(lines) + "\n")
            self._fh.flush()
            self._since_sync += len(ops)
            if self._since_sync >= self.fsync_every:
                os.fsync(self._fh.fileno())
                self._since_sync = 0
                perf.incr("wal_fsyncs")
            perf.incr("wal_appends", len(ops))
            perf.incr("wal_batch_appends")
            return self._seq

    def sync(self) -> None:
        """Force any batched appends to stable storage."""
        with self._lock:
            self._fh.flush()
            if self._since_sync:
                os.fsync(self._fh.fileno())
                self._since_sync = 0
                perf.incr("wal_fsyncs")

    def truncate(self) -> None:
        """Discard all journaled ops (they are covered by a snapshot)."""
        with self._lock:
            self._fh.close()
            self._fh = open(self.path, "w", encoding="utf-8")
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._since_sync = 0

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._fh.close()


def read_wal(path: str | Path) -> list[dict[str, Any]]:
    """All intact ops in the journal, tolerating a torn final line."""
    path = Path(path)
    if not path.exists():
        return []
    ops: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            ops.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                # torn tail: the op was never acknowledged, drop it
                perf.incr("wal_torn_tail")
                break
            raise ValueError(f"{path}: corrupt WAL entry at line {i + 1}")
    return ops


def write_json_atomic(path: str | Path, blob: Mapping[str, Any]) -> Path:
    """Durably replace ``path`` with ``blob`` as sorted JSON.

    Write-to-temp + fsync + ``os.replace`` + parent-directory fsync: a
    crash at any point leaves either the old file or the new one, never
    a torn mix, and a power cut after return cannot roll the rename
    back.  Shared by shard snapshots and the fabric job-queue snapshots.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / (path.name + ".tmp")
    tmp.write_text(json.dumps(blob, sort_keys=True))
    with open(tmp, "r+", encoding="utf-8") as fh:
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    return path


def write_snapshot(data_dir: str | Path, store: DocumentStore, wal_seq: int) -> Path:
    """Atomically write a full store image covering ops ``<= wal_seq``."""
    data_dir = Path(data_dir)
    blob = {
        "format": _SNAP_FORMAT,
        "wal_seq": int(wal_seq),
        "store": store.to_jsonable(),
    }
    final = write_json_atomic(data_dir / _SNAP_NAME, blob)
    perf.incr("wal_snapshots")
    return final


def _fsync_dir(path: Path) -> None:
    """Make a rename in ``path`` durable (no-op where unsupported).

    ``os.replace`` updates the directory entry, not the file — without
    syncing the directory a power cut can lose the rename and bring the
    old snapshot back, behind the already-truncated WAL.
    """
    flags = getattr(os, "O_DIRECTORY", None)
    if flags is None:  # pragma: no cover - non-POSIX platforms
        return
    fd = os.open(path, os.O_RDONLY | flags)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def load_shard_state(data_dir: str | Path) -> tuple[DocumentStore, int]:
    """Recover a shard's store: snapshot (if any) + WAL tail replay.

    Returns the recovered store and the sequence number the WAL should
    continue from.  A missing directory yields an empty store.
    """
    data_dir = Path(data_dir)
    snap_path = data_dir / _SNAP_NAME
    if snap_path.exists():
        blob = json.loads(snap_path.read_text())
        if blob.get("format") != _SNAP_FORMAT:
            raise ValueError(f"{snap_path}: not a shard snapshot")
        store = DocumentStore.from_jsonable(blob["store"])
        snap_seq = int(blob["wal_seq"])
    else:
        store = DocumentStore()
        snap_seq = 0
    last_seq = snap_seq
    for entry in read_wal(data_dir / _WAL_NAME):
        seq = int(entry.get("seq", 0))
        if seq <= snap_seq:
            continue  # already covered by the snapshot
        op = {k: v for k, v in entry.items() if k != "seq"}
        store.apply_op(op)
        last_seq = max(last_seq, seq)
        perf.incr("wal_replayed")
    return store, last_seq


def wal_path(data_dir: str | Path) -> Path:
    return Path(data_dir) / _WAL_NAME
