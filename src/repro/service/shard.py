"""Consistent-hash sharding of the crowd repository.

:class:`ShardRing` places shard names on a 64-bit hash ring with virtual
nodes (classic consistent hashing: adding or removing one shard only
remaps ~1/N of the keys).  Records are keyed by ``(problem_name, task
parameters)`` — one task's samples always live together, so the router
serves a task-pinned query from a single shard while problem-wide
queries fan out.

:class:`CrowdShard` is one storage node: a full
:class:`~repro.crowd.server.CrowdServer` whose document store is made
durable by the write-ahead log of :mod:`repro.service.wal`.  Shards
share one :class:`~repro.crowd.users.UserRegistry` (accounts are not
sharded, mirroring the usual service split of an auth tier in front of
storage tiers); credentials never touch the WAL or snapshots, matching
the repository's existing never-persist-credentials rule.
"""

from __future__ import annotations

import hashlib
import json
import threading
from bisect import bisect_right
from pathlib import Path
from typing import Any, Mapping

from ..core import perf
from ..crowd.configmatch import TagMatcher
from ..crowd.repository import CrowdRepository
from ..crowd.server import CrowdServer
from ..crowd.users import UserRegistry
from ..registry import (
    REGISTRY_MODELS,
    REGISTRY_PROBLEMS,
    ModelRegistry,
    RegistryOptions,
)
from . import wal as _wal

__all__ = [
    "ShardRing",
    "CrowdShard",
    "shard_key",
    "record_ident",
    "bucket_digest",
    "bucket_key",
    "split_bucket_key",
]

#: trusted intra-cluster routes served by the shard itself, never by the
#: public :class:`CrowdServer` protocol and never forwarded by the
#: router's public dispatch — only the router's healing machinery
#: (read-repair, anti-entropy, hinted handoff, shard handoff) calls them
_INTERNAL_ROUTES = frozenset({"replicate", "digest", "fetch", "drop_bucket"})

_RECORDS = "performance_records"


def shard_key(problem_name: str, task_parameters: Mapping[str, Any] | None) -> str:
    """Canonical routing key for a record or a task-pinned query."""
    task = json.dumps(dict(task_parameters or {}), sort_keys=True, default=str)
    return f"{problem_name}\x00{task}"


#: collections the healing protocol moves besides performance records
_HEALED_COLLECTIONS = (REGISTRY_MODELS, REGISTRY_PROBLEMS)


def bucket_key(collection: str, ring_key: str) -> str:
    """Anti-entropy bucket name for one collection's ring key.

    Performance-record buckets keep their historical bare shard-key form
    (pre-registry routers and shards understand them); other collections
    get a ``\\x01``-prefixed composite that no bare key can collide with
    (shard keys never start with ``\\x01``).
    """
    if collection == _RECORDS:
        return ring_key
    return f"\x01{collection}\x01{ring_key}"


def split_bucket_key(key: str) -> tuple[str, str]:
    """Inverse of :func:`bucket_key`: ``(collection, ring_key)``."""
    if key.startswith("\x01"):
        collection, _, ring_key = key[1:].partition("\x01")
        return collection, ring_key
    return _RECORDS, key


def record_ident(doc: Mapping[str, Any]) -> str:
    """Replica-stable identity of one stored record.

    Router-stamped records are identified by their global ``uid``;
    unstamped records (uid 0, uploaded outside the router) fall back to
    a content hash so replicas still compare equal field-for-field.
    """
    uid = int(doc.get("uid", 0) or 0)
    if uid:
        return str(uid)
    blob = json.dumps(
        {k: v for k, v in doc.items() if k != "_id"}, sort_keys=True, default=str
    )
    return "#" + hashlib.sha256(blob.encode()).hexdigest()[:16]


def bucket_digest(entries: list[tuple[str, Any]]) -> str:
    """Order-independent digest of one bucket's ``(ident, timestamp)``s."""
    lines = sorted(f"{ident}@{ts!r}" for ident, ts in entries)
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _ring_hash(value: str) -> int:
    return int.from_bytes(hashlib.sha256(value.encode()).digest()[:8], "little")


class ShardRing:
    """Consistent hashing of keys onto named shards with replication."""

    def __init__(self, names: list[str], *, vnodes: int = 64) -> None:
        if not names:
            raise ValueError("ring needs at least one shard")
        if len(set(names)) != len(names):
            raise ValueError("shard names must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.names = list(names)
        self.vnodes = int(vnodes)
        points: list[tuple[int, str]] = []
        for name in names:
            for v in range(vnodes):
                points.append((_ring_hash(f"{name}#{v}"), name))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    def preference(self, key: str, k: int = 1) -> list[str]:
        """The first ``k`` distinct shards clockwise of ``key``'s hash.

        Index 0 is the primary; the rest are the replicas, in fallback
        order.  ``k`` is capped at the number of shards.
        """
        k = min(max(int(k), 1), len(self.names))
        start = bisect_right(self._hashes, _ring_hash(key))
        out: list[str] = []
        for i in range(len(self._owners)):
            name = self._owners[(start + i) % len(self._owners)]
            if name not in out:
                out.append(name)
                if len(out) == k:
                    break
        return out

    def primary(self, key: str) -> str:
        return self.preference(key, 1)[0]


class CrowdShard:
    """One durable crowd-serving node.

    Without ``data_dir`` the shard is memory-only (tests, throwaway
    demos).  With it, every store mutation is journaled before the
    response leaves :meth:`handle`, a snapshot is taken every
    ``snapshot_every`` journaled ops, and constructing a shard over an
    existing directory recovers snapshot + WAL tail to exactly the last
    acknowledged state.
    """

    def __init__(
        self,
        name: str,
        data_dir: str | Path | None = None,
        *,
        users: UserRegistry | None = None,
        matcher: TagMatcher | None = None,
        snapshot_every: int = 256,
        fsync_every: int = 1,
        registry: RegistryOptions | None = None,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.name = name
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.snapshot_every = int(snapshot_every)
        self._wal: _wal.WriteAheadLog | None = None
        self._ops_since_snapshot = 0
        self._snapshot_due = False
        # per-thread journal batching for internal routes (see handle())
        self._buffers = threading.local()

        if self.data_dir is not None:
            store, last_seq = _wal.load_shard_state(self.data_dir)
        else:
            store, last_seq = None, 0
        self.repository = CrowdRepository(store=store, users=users, matcher=matcher)
        # resume the logical clock past every recovered record so new
        # uploads keep strictly increasing timestamps
        for doc in self.repository.store["performance_records"].find({}, frozen=True):
            self.repository.advance_clock(float(doc.get("timestamp", 0.0)))
        # the registry is built before the WAL observer is installed, so
        # its collection/index setup (like the repository's own) is never
        # journaled; its entries recover from snapshot + WAL like records,
        # and the version tracker's construction scan sees the recovered
        # store, so staleness accounting survives a crash too
        self.registry: ModelRegistry | None = (
            ModelRegistry(self.repository, registry) if registry is not None else None
        )
        self.server = CrowdServer(self.repository, registry=self.registry)

        if self.data_dir is not None:
            self._wal = _wal.WriteAheadLog(
                _wal.wal_path(self.data_dir), fsync_every=fsync_every
            )
            self._wal.start_from(last_seq)
            # journal every mutation from here on (recovery replay above
            # ran before the observer existed, so it never re-journals)
            self.repository.store.set_observer(self._journal)

    # -- durability ---------------------------------------------------------
    def _journal(self, op: dict[str, Any]) -> None:
        assert self._wal is not None
        buffered = getattr(self._buffers, "ops", None)
        if buffered is not None:
            # an internal route is batching on this thread: hold the op,
            # handle() writes the whole request's ops as one WAL batch
            buffered.append(op)
            return
        self._wal.append(op)
        self._count_ops(1)

    def _count_ops(self, n: int) -> None:
        self._ops_since_snapshot += n
        if self._ops_since_snapshot >= self.snapshot_every:
            # deferred: snapshotting inside the observer runs under the
            # collection lock; handle() runs it after the request instead
            self._snapshot_due = True

    def snapshot(self) -> None:
        """Write a full store image and truncate the journal."""
        if self._wal is None:
            return
        self._wal.sync()
        _wal.write_snapshot(self.data_dir, self.repository.store, self._wal.seq)
        self._wal.truncate()
        self._ops_since_snapshot = 0
        self._snapshot_due = False

    # -- serving ------------------------------------------------------------
    def handle(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Serve one request; durability holds before the response."""
        route = request.get("route") if isinstance(request, Mapping) else None
        with perf.timer(f"shard.{self.name}"):
            if route in _INTERNAL_ROUTES:
                # internal routes stream many documents per request
                # (replication, hint replay, rebalance): batch this
                # thread's journal ops into one WAL write + fsync pass.
                # Safe because their ops commute — replicate/drop replay
                # keys by ``_id``/content, never by arrival order against
                # concurrent public writes.
                self._buffers.ops = []
                try:
                    response = getattr(self, f"_route_{route}")(request)
                except (KeyError, TypeError, ValueError) as exc:
                    response = {
                        "ok": False,
                        "error": "bad_request",
                        "message": str(exc),
                    }
                finally:
                    ops = self._buffers.ops
                    self._buffers.ops = None
                    if ops:
                        assert self._wal is not None
                        self._wal.append_many(ops)
                        self._count_ops(len(ops))
            else:
                response = self.server.handle(request)
        perf.incr(f"shard_requests.{self.name}")
        if self._snapshot_due:
            self.snapshot()
        perf.gauge(f"shard_records.{self.name}", self.repository.count())
        return response

    # -- intra-cluster healing protocol --------------------------------------
    # These routes are the trust boundary of the replication machinery:
    # they move full record documents (owner, uid, timestamp included)
    # between replicas, so they are reachable only over the router's own
    # shard connections — the public router dispatch rejects the route
    # names and CrowdServer does not know them.

    @staticmethod
    def _doc_ring_key(collection: str, doc: Mapping[str, Any]) -> str:
        """The ring key one stored document buckets under."""
        if collection == REGISTRY_PROBLEMS:
            # problem docs are broadcast to every shard, keyed by name
            return str(doc.get("problem_name", ""))
        # records and registry entries co-locate under the task's key
        return shard_key(doc.get("problem_name", ""), doc.get("task_parameters"))

    def _apply_registry_doc(self, collection: str, doc: dict[str, Any]) -> bool:
        """Newest-wins upsert of a replicated registry document."""
        if self.registry is not None:
            if collection == REGISTRY_PROBLEMS:
                return self.registry.apply_problem(doc)
            return self.registry.apply_entry(doc)
        # registry-less shard: still hold the healed data so a later
        # restart with a registry (or a fetch by a peer) serves it
        coll = self.repository.store[collection]
        if collection == REGISTRY_PROBLEMS:
            match = {"problem_name": doc["problem_name"]}
            newer = (float(doc.get("timestamp", 0.0)),)
            held = lambda d: (float(d.get("timestamp", 0.0)),)
        else:
            match = {"problem_name": doc["problem_name"], "task_key": doc["task_key"]}
            newer = (int(doc.get("data_version", 0)), float(doc.get("timestamp", 0.0)))
            held = lambda d: (
                int(d.get("data_version", 0)),
                float(d.get("timestamp", 0.0)),
            )
        existing = coll.find_one(match)
        if existing is not None and held(existing) >= newer:
            return False
        coll.delete(match)
        coll.insert(doc)
        return True

    def _route_replicate(self, req: Mapping[str, Any]) -> dict[str, Any]:
        """Store full docs verbatim, newest-wins.

        ``collection`` (default: performance records, the pre-registry
        wire format) selects what the docs are: records deduplicate by
        uid/content and merge newest-wins by timestamp; registry entries
        and problem docs upsert newest-wins per key.
        """
        collection = str(req.get("collection", _RECORDS))
        if collection != _RECORDS:
            if collection not in _HEALED_COLLECTIONS:
                raise ValueError(f"cannot replicate collection {collection!r}")
            applied = 0
            for doc in req["records"]:
                doc = {k: v for k, v in dict(doc).items() if k != "_id"}
                if self._apply_registry_doc(collection, doc):
                    applied += 1
            return {"ok": True, "applied": applied}
        coll = self.repository.store[_RECORDS]
        applied = 0
        applied_docs: list[dict[str, Any]] = []
        # inserts are deferred into one batch (one lock acquisition, one
        # journaled op), so intra-batch dedup checks the pending docs too
        pending: list[dict[str, Any]] = []
        pending_uid: dict[int, int] = {}  # uid -> index into pending
        pending_content: set[str] = set()  # canonical JSON of uid-0 docs
        for doc in req["records"]:
            doc = {k: v for k, v in dict(doc).items() if k != "_id"}
            uid = int(doc.get("uid", 0) or 0)
            ts = float(doc.get("timestamp", 0.0) or 0.0)
            if uid:
                held = pending_uid.get(uid)
                if held is not None:
                    if float(pending[held].get("timestamp", 0.0) or 0.0) >= ts:
                        continue  # pending copy is this version or newer
                    pending[held] = doc  # newest-wins within the batch
                    self.repository.advance_clock(ts)
                    applied += 1
                    applied_docs.append(doc)
                    continue
                existing = coll.find_one({"uid": uid}, frozen=True)
                if existing is not None:
                    if float(existing.get("timestamp", 0.0) or 0.0) >= ts:
                        continue  # already have this version or newer
                    coll.delete({"_id": existing["_id"]})
                pending_uid[uid] = len(pending)
            else:
                blob = json.dumps(doc, sort_keys=True, default=str)
                if blob in pending_content or coll.find_one(doc) is not None:
                    continue  # unstamped record already present field-for-field
                pending_content.add(blob)
            pending.append(doc)
            self.repository.advance_clock(ts)
            applied += 1
            applied_docs.append(doc)
        if pending:
            coll.insert_many(pending)
        if applied_docs and self.registry is not None:
            # replicated records advance data versions and (policy
            # permitting) trigger a rebuild, same as direct uploads
            self.registry.notify_docs(applied_docs)
        return {"ok": True, "applied": applied}

    def _route_digest(self, req: Mapping[str, Any]) -> dict[str, Any]:
        """Per-bucket digests of this shard's healed state (anti-entropy).

        Registry collections digest alongside records under composite
        bucket keys; registry entries are content-determined (same record
        set -> same bytes), so replicas that independently built the same
        entry digest equal and cost the healer nothing.
        """
        buckets: dict[str, list[tuple[str, Any]]] = {}
        for collection in (_RECORDS, *_HEALED_COLLECTIONS):
            for doc in self.repository.store[collection].find({}, frozen=True):
                key = bucket_key(collection, self._doc_ring_key(collection, doc))
                buckets.setdefault(key, []).append(
                    (record_ident(doc), doc.get("timestamp", 0.0))
                )
        return {
            "ok": True,
            "digests": {
                key: {"digest": bucket_digest(entries), "count": len(entries)}
                for key, entries in buckets.items()
            },
        }

    def _route_fetch(self, req: Mapping[str, Any]) -> dict[str, Any]:
        """Full documents of the requested buckets (healing stream)."""
        keys = {str(k) for k in req["keys"]}
        out: dict[str, list[dict[str, Any]]] = {key: [] for key in keys}
        wanted = {split_bucket_key(k)[0] for k in keys}
        for collection in (_RECORDS, *_HEALED_COLLECTIONS):
            if collection not in wanted:
                continue
            for doc in self.repository.store[collection].find({}, frozen=True):
                key = bucket_key(collection, self._doc_ring_key(collection, doc))
                if key in keys:
                    out[key].append({k: v for k, v in doc.items() if k != "_id"})
        return {"ok": True, "buckets": out}

    def _route_drop_bucket(self, req: Mapping[str, Any]) -> dict[str, Any]:
        """Drop one bucket this shard no longer owns (post-handoff)."""
        key = str(req["key"])
        collection, _ = split_bucket_key(key)
        if collection != _RECORDS and collection not in _HEALED_COLLECTIONS:
            raise ValueError(f"cannot drop bucket of collection {collection!r}")
        coll = self.repository.store[collection]
        doomed = sorted(
            doc["_id"]
            for doc in coll.find({}, frozen=True)
            if bucket_key(collection, self._doc_ring_key(collection, doc)) == key
        )
        dropped = coll.delete({"_id": {"$in": doomed}}) if doomed else 0
        return {"ok": True, "dropped": dropped}

    def count(self) -> int:
        return self.repository.count()

    def close(self) -> None:
        """Stop the registry builder and close the journal (idempotent)."""
        if self.registry is not None:
            self.registry.close()
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "CrowdShard":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        where = self.data_dir if self.data_dir is not None else "memory"
        return f"<CrowdShard {self.name} @ {where}, {self.count()} records>"
