"""Simulated in-process transport with deterministic latency and faults.

No network exists in this environment, so shard RPC is modeled the same
way the async engine models worker crashes
(:mod:`repro.engine.faults`): every behavioral decision is a pure
function of ``(seed, endpoint, sequence number)`` — never of wall-clock
or thread timing — so a run with a fixed seed drops exactly the same
requests and charges exactly the same latencies regardless of how
client threads interleave.

:class:`SimTransport` also serializes delivery per endpoint (one shard
processes one request at a time, like a single-threaded server loop),
which is what makes the sharding benchmark honest: aggregate read
throughput grows with shard count only because independent shards really
do serve concurrently.  The queue depth observed while waiting for the
endpoint is exported as the ``shard_depth.<name>`` gauge.

Faults use the *request-lost* model: a dropped request never reaches the
endpoint (no half-applied writes), the client sees
:class:`TransportError` and retries.  This matches the paper's service
reality — an HTTPS POST that fails to connect — while keeping upload
retries exactly-once on the storage side.  ``scripted_response_faults``
models the nastier *ack-lost* failure: the request IS delivered and
applied, then the response is dropped on the way back — the case that
makes blind client retries duplicate writes unless an idempotency token
deduplicates them (see :class:`~repro.service.client.ServiceClient`).

``down`` simulates a crashed endpoint; flipping it back to ``False``
fires every callback registered with :meth:`on_up` — the router uses
this to replay hinted-handoff writes the moment a shard rejoins.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Any, Callable, Iterable, Mapping

from ..core import perf

__all__ = ["TransportError", "SimTransport"]


class TransportError(ConnectionError):
    """A simulated network failure (request never delivered)."""


def _draw(seed: int, endpoint: str, seq: int) -> float:
    """Deterministic uniform draw in [0, 1) for one delivery attempt."""
    blob = f"{seed}:{endpoint}:{seq}".encode()
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


class SimTransport:
    """Deterministic-latency, fault-injecting channel to one endpoint.

    Parameters
    ----------
    target:
        The endpoint's request handler (``request dict -> response
        dict``), e.g. :meth:`CrowdShard.handle`.
    name:
        Endpoint name; part of the fault/latency hash and of gauge names.
    latency_s:
        Base one-way service latency.  Each delivery is charged
        ``latency_s * (0.75 + 0.5 * u)`` with ``u`` the deterministic
        draw for its sequence number (zero latency charges nothing).
    fault_rate:
        Per-delivery probability of dropping the request.
    scripted_faults:
        Explicit sequence numbers to drop (regression tests); applied on
        top of ``fault_rate``.  Sequence numbers start at 1.
    scripted_response_faults:
        Sequence numbers whose *response* is dropped: the request is
        delivered and applied by the endpoint, then the ack is lost.
    """

    def __init__(
        self,
        target: Callable[[Mapping[str, Any]], dict[str, Any]],
        name: str = "shard",
        *,
        latency_s: float = 0.0,
        fault_rate: float = 0.0,
        seed: int = 0,
        scripted_faults: Iterable[int] = (),
        scripted_response_faults: Iterable[int] = (),
    ) -> None:
        if not 0.0 <= fault_rate < 1.0:
            raise ValueError(f"fault rate must be in [0, 1), got {fault_rate}")
        if latency_s < 0:
            raise ValueError("latency must be >= 0")
        self.target = target
        self.name = name
        self.latency_s = float(latency_s)
        self.fault_rate = float(fault_rate)
        self.seed = int(seed)
        self.scripted_faults = {int(s) for s in scripted_faults}
        self.scripted_response_faults = {int(s) for s in scripted_response_faults}
        self._down = False  # hard-failed endpoint (crash simulations)
        self._on_up: list[Callable[[str], None]] = []
        self._lock = threading.Lock()
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._waiting = 0

    @property
    def down(self) -> bool:
        """Hard-failed endpoint (crash simulations)."""
        return self._down

    @down.setter
    def down(self, value: bool) -> None:
        was_down, self._down = self._down, bool(value)
        if was_down and not self._down:
            for callback in list(self._on_up):
                callback(self.name)

    def on_up(self, callback: Callable[[str], None]) -> None:
        """Register ``callback(name)`` to fire when ``down`` clears.

        The router registers its hinted-handoff replay here so writes
        buffered while the endpoint was down land as soon as it rejoins.
        """
        self._on_up.append(callback)

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    @property
    def n_requests(self) -> int:
        """Delivery attempts so far (including dropped ones)."""
        with self._seq_lock:
            return self._seq

    def request(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Deliver one request; raises :class:`TransportError` on faults."""
        seq = self._next_seq()
        if self.down:
            perf.incr("transport_faults")
            raise TransportError(f"endpoint {self.name} is down")
        u = _draw(self.seed, self.name, seq)
        if seq in self.scripted_faults or (
            self.fault_rate > 0.0 and u < self.fault_rate
        ):
            perf.incr("transport_faults")
            raise TransportError(f"request {seq} to {self.name} lost")
        with self._seq_lock:
            self._waiting += 1
            depth = self._waiting
        perf.gauge(f"shard_depth.{self.name}", depth)
        try:
            with self._lock:  # one request at a time per endpoint
                if self.latency_s > 0.0:
                    time.sleep(self.latency_s * (0.75 + 0.5 * u))
                response = self.target(request)
            if seq in self.scripted_response_faults:
                # the endpoint applied the request; only the ack is lost
                perf.incr("transport_faults")
                raise TransportError(f"response {seq} from {self.name} lost")
            return response
        finally:
            with self._seq_lock:
                self._waiting -= 1
