"""Transfer-learning autotuning (TLA): the paper's Table I pool.

Exposes the five TLA algorithms plus the three ensemble selectors, a
registry (:func:`get_strategy`, :func:`pool_table`) mirroring Table I, and
the :class:`TransferTuner` driver.
"""

from .base import TLAStrategy, combine_weighted, equal_weight_model, fit_source_gps
from .gptuneband import (
    BanditResult,
    GPTuneBand,
    MultiFidelityObjective,
    halving_schedule,
)
from .ensemble import (
    EnsembleProb,
    EnsembleProposed,
    EnsembleToggling,
    exploration_rate,
)
from .multitask import MultitaskPS, MultitaskTS
from .stacking import Stacking
from .store import FrozenGP, SourceModelStore
from .tuner import TransferTuner
from .weighted_sum import WeightedSumDynamic, WeightedSumStatic, dynamic_weights

__all__ = [
    "BanditResult",
    "EnsembleProb",
    "EnsembleProposed",
    "EnsembleToggling",
    "FrozenGP",
    "GPTuneBand",
    "MultiFidelityObjective",
    "MultitaskPS",
    "MultitaskTS",
    "SourceModelStore",
    "Stacking",
    "TLAStrategy",
    "TransferTuner",
    "WeightedSumDynamic",
    "WeightedSumStatic",
    "combine_weighted",
    "dynamic_weights",
    "equal_weight_model",
    "exploration_rate",
    "fit_source_gps",
    "halving_schedule",
    "get_strategy",
    "pool_table",
    "STRATEGY_REGISTRY",
]

#: Table I of the paper: name -> strategy class
STRATEGY_REGISTRY: dict[str, type[TLAStrategy]] = {
    "multitask-ps": MultitaskPS,
    "multitask-ts": MultitaskTS,
    "weighted-sum-equal": WeightedSumStatic,
    "weighted-sum-dynamic": WeightedSumDynamic,
    "stacking": Stacking,
    "ensemble-proposed": EnsembleProposed,
    "ensemble-toggling": EnsembleToggling,
    "ensemble-prob": EnsembleProb,
}


def get_strategy(key: str, **kwargs) -> TLAStrategy:
    """Instantiate a TLA strategy by registry key (see STRATEGY_REGISTRY)."""
    try:
        cls = STRATEGY_REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown TLA strategy {key!r}; choose from {sorted(STRATEGY_REGISTRY)}"
        )
    return cls(**kwargs)


def pool_table() -> list[dict[str, str]]:
    """The paper's Table I as data: name, description, provenance."""
    rows = []
    for key, cls in STRATEGY_REGISTRY.items():
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        rows.append(
            {
                "key": key,
                "name": cls.name,
                "description": doc,
                "first_autotuner": cls.provenance,
            }
        )
    return rows
