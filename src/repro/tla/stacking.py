"""Stacking TLA — Google Vizier's residual-model transfer [12] (Sec. V-D).

Sources are ordered by sample count (largest first, the paper's choice).
A GP is fit to the first source; each subsequent source gets a GP on the
*residuals* between its observations and the running stack's mean; the
target task contributes a final residual GP refit at every iteration.

    mu(x) = mu'_target(x) + sum_i mu'_src_i(x)

The standard deviation combines iteratively through sample-count-weighted
geometric means:

    sigma_i(x) = sigma'_i(x)^beta_i * sigma_{i-1}(x)^{1-beta_i},
    beta_i = n_i / (n_i + n_{i-1})

ending with ``beta = n_target / (n_target + n_src_last)`` for the target.
"""

from __future__ import annotations

import numpy as np

from ..core.acquisition import PredictFn
from ..core.gp import GaussianProcess, GPFitError
from ..core.history import TaskData
from ..core.kernels import kernel_from_name
from .base import TLAStrategy, equal_weight_model

__all__ = ["Stacking"]


class Stacking(TLAStrategy):
    """Vizier-style stacked residual surrogates."""

    name = "Stacking"
    provenance = "[12]"

    #: stacking orders: "samples" (paper: largest source first),
    #: "given" (query order), "reverse" (smallest first; ablation)
    ORDERS = ("samples", "given", "reverse")

    def __init__(self, order: str = "samples", **kwargs) -> None:
        super().__init__(**kwargs)
        if order not in self.ORDERS:
            raise ValueError(f"order must be one of {self.ORDERS}, got {order!r}")
        self.order = order
        self._stack: list[GaussianProcess] = []
        self._stack_ns: list[int] = []

    # -- source stack (built once) ----------------------------------------
    def prepare(self, sources: list[TaskData], rng: np.random.Generator) -> None:
        super().prepare(sources, rng)
        if self.order == "samples":
            ordered = sorted(sources, key=lambda s: s.n, reverse=True)
        elif self.order == "reverse":
            ordered = sorted(sources, key=lambda s: s.n)
        else:
            ordered = list(sources)
        self._stack = []
        self._stack_ns = []
        for src in ordered:
            if self._stack:
                residual = src.y - self._stack_mean(src.X)
            else:
                residual = src.y
            gp = GaussianProcess(
                kernel_from_name(self.kernel, src.dim),
                max_fun=self.gp_max_fun,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            gp.fit(src.X, residual)
            self._stack.append(gp)
            self._stack_ns.append(src.n)

    def _stack_mean(self, X: np.ndarray) -> np.ndarray:
        mean = np.zeros(X.shape[0])
        for gp in self._stack:
            mean += gp.predict_mean(X)
        return mean

    def _stack_std(self, X: np.ndarray) -> np.ndarray:
        """Iterative sample-weighted geometric mean over the source stack."""
        _, std = self._stack[0].predict(X)
        running = np.maximum(std, 1e-12)
        for gp, n_i, n_prev in zip(
            self._stack[1:], self._stack_ns[1:], self._stack_ns[:-1]
        ):
            _, s_i = gp.predict(X)
            beta = n_i / (n_i + n_prev)
            running = np.maximum(s_i, 1e-12) ** beta * running ** (1.0 - beta)
        return running

    # -- per-iteration target residual ------------------------------------
    def model(self, target: TaskData, rng: np.random.Generator) -> PredictFn | None:
        if target.n == 0:
            return equal_weight_model(self.source_gps)
        residual = target.y - self._stack_mean(target.X)
        tgt = GaussianProcess(
            kernel_from_name(self.kernel, target.dim),
            max_fun=self.gp_max_fun,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        try:
            tgt.fit(target.X, residual)
        except GPFitError:
            return None
        n_t, n_last = target.n, self._stack_ns[-1]
        beta = n_t / (n_t + n_last)

        def predict(X: np.ndarray):
            mu_t, sd_t = tgt.predict(X)
            mean = mu_t + self._stack_mean(X)
            sd = np.maximum(sd_t, 1e-12) ** beta * self._stack_std(X) ** (1.0 - beta)
            return mean, sd

        return predict
