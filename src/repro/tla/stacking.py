"""Stacking TLA — Google Vizier's residual-model transfer [12] (Sec. V-D).

Sources are ordered by sample count (largest first, the paper's choice).
A GP is fit to the first source; each subsequent source gets a GP on the
*residuals* between its observations and the running stack's mean; the
target task contributes a final residual GP refit at every iteration.

    mu(x) = mu'_target(x) + sum_i mu'_src_i(x)

The standard deviation combines iteratively through sample-count-weighted
geometric means:

    sigma_i(x) = sigma'_i(x)^beta_i * sigma_{i-1}(x)^{1-beta_i},
    beta_i = n_i / (n_i + n_{i-1})

ending with ``beta = n_target / (n_target + n_src_last)`` for the target.

Fast-pool hooks: with a :class:`repro.tla.store.SourceModelStore` the
stack GPs are content-cached (the first stack entry is the raw largest
source, shared with every other strategy; later residual entries are
shared across repeats of the same sweep — counted under
``tla_stack_fits``/``tla_stack_cache_hits``) and the frozen stack's
predictions at the recurring target anchor points are memoized.  With
``refit_every > 1`` the per-iteration target residual GP freezes its
hyperparameters between boundaries and absorbs appended observations
through rank-1 updates; this is sound because the source stack never
changes after :meth:`prepare`, so old rows' residuals are stable.
"""

from __future__ import annotations

import numpy as np

from ..core import perf
from ..core.acquisition import PredictFn
from ..core.gp import GaussianProcess, GPFitError
from ..core.history import TaskData
from ..core.kernels import kernel_from_name
from .base import TLAStrategy, equal_weight_model
from .store import frozen_view

__all__ = ["Stacking"]


class Stacking(TLAStrategy):
    """Vizier-style stacked residual surrogates."""

    name = "Stacking"
    provenance = "[12]"

    #: stacking orders: "samples" (paper: largest source first),
    #: "given" (query order), "reverse" (smallest first; ablation)
    ORDERS = ("samples", "given", "reverse")

    def __init__(self, order: str = "samples", **kwargs) -> None:
        super().__init__(**kwargs)
        if order not in self.ORDERS:
            raise ValueError(f"order must be one of {self.ORDERS}, got {order!r}")
        self.order = order
        self._stack: list[GaussianProcess] = []
        self._stack_ns: list[int] = []
        self._res_gp: GaussianProcess | None = None
        self._res_iter = 0

    # -- source stack (built once) ----------------------------------------
    def prepare(self, sources: list[TaskData], rng: np.random.Generator) -> None:
        super().prepare(sources, rng)
        if self.order == "samples":
            ordered = sorted(sources, key=lambda s: s.n, reverse=True)
        elif self.order == "reverse":
            ordered = sorted(sources, key=lambda s: s.n)
        else:
            ordered = list(sources)
        self._stack = []
        self._stack_ns = []
        self._res_gp = None
        self._res_iter = 0
        for src in ordered:
            if self._stack:
                residual = src.y - self._stack_mean(src.X)
            else:
                residual = src.y
            seed = int(rng.integers(0, 2**31 - 1))
            if self.store is not None:
                gp = self.store.fit_gp(
                    src.X,
                    residual,
                    seed,
                    kernel=self.kernel,
                    max_fun=self.gp_max_fun,
                    counter="stack",
                )
            else:
                gp = GaussianProcess(
                    kernel_from_name(self.kernel, src.dim),
                    max_fun=self.gp_max_fun,
                    seed=seed,
                )
                gp.fit(src.X, residual)
            self._stack.append(gp)
            self._stack_ns.append(src.n)

    def _stack_predict(
        self, gp: GaussianProcess, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predict with one frozen stack GP (memoized through the store)."""
        if self.store is not None:
            return self.store.predict(gp, X)
        return gp.predict(X)

    def _stack_mean(self, X: np.ndarray) -> np.ndarray:
        mean = np.zeros(X.shape[0])
        if self.store is not None:
            for gp in self._stack:
                mean += self.store.predict(gp, X)[0]
            return mean
        for gp in self._stack:
            mean += gp.predict_mean(X)
        return mean

    def _stack_std(self, X: np.ndarray) -> np.ndarray:
        """Iterative sample-weighted geometric mean over the source stack."""
        _, std = self._stack_predict(self._stack[0], X)
        running = np.maximum(std, 1e-12)
        for gp, n_i, n_prev in zip(
            self._stack[1:], self._stack_ns[1:], self._stack_ns[:-1]
        ):
            _, s_i = self._stack_predict(gp, X)
            beta = n_i / (n_i + n_prev)
            running = np.maximum(s_i, 1e-12) ** beta * running ** (1.0 - beta)
        return running

    def _stack_fast_predicts(self) -> list | None:
        """Frozen fast predictors for the whole stack, or ``None``.

        The acquisition search evaluates the combined surrogate at fresh
        candidate batches, where the per-row memo cannot hit; the frozen
        extraction (cached train-side quantities, raw LAPACK solves)
        still pays there.
        """
        fast = [frozen_view(gp) for gp in self._stack]
        if any(f is None for f in fast):
            return None
        return fast

    # -- per-iteration target residual ------------------------------------
    def _residual_gp(
        self, target: TaskData, residual: np.ndarray, rng: np.random.Generator
    ) -> GaussianProcess | None:
        """The target residual GP, incrementally refreshed off-boundary.

        Same cadence contract as :meth:`TLAStrategy._target_gp`: the seed
        is drawn unconditionally, ``refit_every`` boundaries re-run the
        MLE, and in between appended rows grow the cached factorization.
        """
        seed = int(rng.integers(0, 2**31 - 1))
        refit = self._res_gp is None or (self._res_iter % self.refit_every == 0)
        self._res_iter += 1
        gp = self._res_gp
        if not refit and gp is not None and gp.fitted:
            n_new = gp.extends_training_data(target.X, residual)
            if n_new == 0:
                return gp
            if n_new is not None:
                try:
                    gp.update(target.X[-n_new:], residual[-n_new:])
                except GPFitError:
                    return None
                perf.incr("tla_incremental_refits")
                return gp
            gp.optimize = False
            try:
                gp.fit(target.X, residual)
            except GPFitError:
                return None
            finally:
                gp.optimize = True
            return gp
        prev = self._res_gp
        gp = GaussianProcess(
            kernel_from_name(self.kernel, target.dim),
            max_fun=self.gp_max_fun,
            seed=seed,
        )
        if self.refit_every > 1 and prev is not None and prev.fitted:
            # amortized cadence: warm-start the boundary MLE from the
            # previous optimum (see TLAStrategy._target_gp)
            gp.kernel.set_theta(prev.kernel.get_theta())
            gp.noise_variance = prev.noise_variance
            gp.n_restarts = 0
        try:
            gp.fit(target.X, residual)
        except GPFitError:
            return None
        self._res_gp = gp
        return gp

    def model(self, target: TaskData, rng: np.random.Generator) -> PredictFn | None:
        if target.n == 0:
            return equal_weight_model(self.source_gps, store=self.store)
        residual = target.y - self._stack_mean(target.X)
        tgt = self._residual_gp(target, residual, rng)
        if tgt is None:
            return None
        n_t, n_last = target.n, self._stack_ns[-1]
        beta = n_t / (n_t + n_last)

        fast = self._stack_fast_predicts() if self.store is not None else None
        if fast is not None:
            stack_ns = list(self._stack_ns)

            def predict(X: np.ndarray):
                perf.incr("tla_batched_predicts")
                mu_t, sd_t = tgt.predict(X)
                preds = [f.predict(X) for f in fast]
                mean = mu_t
                for mu_i, _ in preds:
                    mean = mean + mu_i
                running = np.maximum(preds[0][1], 1e-12)
                for (_, s_i), n_i, n_prev in zip(
                    preds[1:], stack_ns[1:], stack_ns[:-1]
                ):
                    b = n_i / (n_i + n_prev)
                    running = np.maximum(s_i, 1e-12) ** b * running ** (1.0 - b)
                sd = np.maximum(sd_t, 1e-12) ** beta * running ** (1.0 - beta)
                return mean, sd

            return predict

        def predict(X: np.ndarray):
            mu_t, sd_t = tgt.predict(X)
            mean = mu_t + self._stack_mean(X)
            sd = np.maximum(sd_t, 1e-12) ** beta * self._stack_std(X) ** (1.0 - beta)
            return mean, sd

        return predict
