"""Transfer-learning tuning loop (system S7's driver).

:class:`TransferTuner` extends the core BO loop: instead of an initial
random design plus a target-only GP, every proposal comes from the TLA
strategy's transfer surrogate.  The very first evaluation — when no
target data exists and neither dynamic weights nor an LCM has anything to
fit — falls back to the equal-weight combination of the source
surrogates, matching the paper's experimental protocol (Sec. VI-A).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..core import perf
from ..core.feasibility import KnnFeasibility
from ..core.history import History, TaskData
from ..core.optimizer import search_next
from ..core.problem import TuningProblem
from ..core.tuner import Tuner, TunerOptions
from .base import TLAStrategy, equal_weight_model

__all__ = ["TransferTuner"]


class TransferTuner(Tuner):
    """BO tuner whose surrogate is a TLA strategy over crowd source data.

    Parameters
    ----------
    problem:
        Target tuning problem.
    strategy:
        A :class:`repro.tla.base.TLAStrategy` (one of the paper's
        Table I pool).
    sources:
        Source-task datasets, e.g. from
        :meth:`repro.crowd.api.CrowdClient.query_source_data`.
    """

    def __init__(
        self,
        problem: TuningProblem,
        strategy: TLAStrategy,
        sources: list[TaskData],
        options: TunerOptions | None = None,
        callbacks=None,
    ) -> None:
        opts = options or TunerOptions()
        opts.n_initial = 0  # transfer replaces the random initial design
        super().__init__(problem, opts, callbacks)
        self.strategy = strategy
        self.sources = list(sources)
        self.name = strategy.name

    # -- hooks ------------------------------------------------------------
    def _prepare(self, task: Mapping[str, Any], rng: np.random.Generator) -> None:
        super()._prepare(task, rng)
        if not self.strategy.prepared:
            self.strategy.prepare(self.sources, rng)

    def _propose(self, hist: History, rng: np.random.Generator) -> dict[str, Any]:
        target = hist.as_task_data()
        with perf.timer("surrogate"):
            predict = self.strategy.model(target, rng)
        if predict is None:
            try:
                predict = equal_weight_model(
                    self.strategy.source_gps, store=self.strategy.store
                )
            except ValueError:
                return self._initial_config(
                    self.options.make_sampler(), hist, self._feasible, rng
                )
        X_failed = hist.failed_array()
        with perf.timer("search"):
            config = search_next(
                predict,
                self.problem.parameter_space,
                self.options.acquisition,
                rng,
                X_obs=target.X,
                evaluated=hist.configs(),
                X_failed=X_failed,
                p_feasible=self._crowd_feasibility(target, X_failed),
                feasible=self._feasible,
                options=self.options.search,
            )
        x_unit = self.problem.parameter_space.to_unit(config)
        self.strategy.notify_proposal(x_unit, rng)
        self._last_x_unit = x_unit
        return config

    def _crowd_feasibility(self, target: TaskData, X_failed):
        """P(feasible) learned from target history *and* the sources'
        recorded failures (the crowd database stores failed samples too;
        an OOM region observed on a source task warns the target run)."""
        if not self.options.learn_feasibility:
            return None
        fails = [X_failed] + [
            s.X_failed for s in self.sources if s.X_failed is not None
        ]
        fails = [f for f in fails if f is not None and len(f)]
        if not fails:
            return None
        oks = [target.X] + [s.X for s in self.sources]
        model = KnnFeasibility(np.vstack(oks), np.vstack(fails))
        return model.predict_proba

    def tune(self, task, n_samples, *, seed=None, history=None):
        """Run the transfer-tuning loop (see :meth:`Tuner.tune`).

        Wraps the parent loop so strategy result-notifications fire after
        each evaluation (the base loop invokes callbacks; we register a
        bridge callback bound to this run).
        """
        self._last_x_unit = None

        def _notify(evaluation):
            if self._last_x_unit is not None:
                y = None if evaluation.failed else float(evaluation.output)
                self.strategy.notify_result(self._last_x_unit, y)

        self.callbacks.append(_notify)
        try:
            return super().tune(task, n_samples, seed=seed, history=history)
        finally:
            self.callbacks.remove(_notify)
