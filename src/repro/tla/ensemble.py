"""Ensemble TLA — the paper's proposed Algorithm 1 plus the two naive
baselines it is compared against (Sec. V-E).

``Ensemble(proposed)`` keeps a pool of TLA algorithms (default:
Multitask(TS), WeightedSum(dynamic), Stacking).  Before each function
evaluation it either *explores* — picks an algorithm uniformly at random,
with probability given by the dynamically shrinking rate of Eq. (4) —

    ExplorationRate = (|T| * n_params / n_samples)
                      / (1 + |T| * n_params / n_samples)

— or *exploits*: samples an algorithm from the probability distribution
of Eq. (3), which favors algorithms whose chosen configurations achieved
the best outputs so far:

    prob(t) = (1 / best_output(t)) / sum_t' (1 / best_output(t'))

``Ensemble(toggling)`` cycles through the pool round-robin and
``Ensemble(prob)`` uses Eq. (3) alone (exploration rate pinned to zero);
both are the naive baselines of Fig. 3.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.acquisition import PredictFn
from ..core.history import TaskData
from .base import TLAStrategy
from .multitask import MultitaskTS
from .stacking import Stacking
from .weighted_sum import WeightedSumDynamic

__all__ = ["EnsembleProposed", "EnsembleToggling", "EnsembleProb", "exploration_rate"]


def exploration_rate(n_algorithms: int, n_parameters: int, n_samples: int) -> float:
    """Eq. (4).  With zero samples the rate is 1 (pure exploration)."""
    if n_algorithms < 1 or n_parameters < 1:
        raise ValueError("n_algorithms and n_parameters must be >= 1")
    if n_samples <= 0:
        return 1.0
    ratio = n_algorithms * n_parameters / n_samples
    return ratio / (1.0 + ratio)


def _default_pool(multitask_kwargs=None, **kwargs) -> list[TLAStrategy]:
    """The paper's default pool.  ``multitask_kwargs`` reach only the LCM
    member (e.g. ``lcm_n_restarts``, ``refit_every``), so the fast-LCM
    controls can be tuned without breaking the GP-only strategies."""
    return [
        MultitaskTS(**{**kwargs, **(multitask_kwargs or {})}),
        WeightedSumDynamic(**kwargs),
        Stacking(**kwargs),
    ]


class _EnsembleBase(TLAStrategy):
    """Shared pool management and per-algorithm best-output tracking."""

    def __init__(
        self,
        pool: list[TLAStrategy] | None = None,
        multitask_kwargs=None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.pool = (
            pool
            if pool is not None
            else _default_pool(multitask_kwargs=multitask_kwargs, **kwargs)
        )
        if not self.pool:
            raise ValueError("ensemble pool must not be empty")
        self.best_outputs: list[float] = [math.inf] * len(self.pool)
        self._chosen: int | None = None
        self._n_parameters: int | None = None

    def prepare(self, sources: list[TaskData], rng: np.random.Generator) -> None:
        super().prepare(sources, rng)
        self._n_parameters = sources[0].dim
        for strategy in self.pool:
            # share the ensemble's surrogate store with its members: the
            # shell fit above already populated it, so each member's
            # prepare() reuses the fitted source GPs instead of re-running
            # the MLE (1x fits per ensemble prepare instead of 1 + pool)
            if self.store is not None and strategy.store is None:
                strategy.store = self.store
            strategy.prepare(sources, rng)
        self.best_outputs = [math.inf] * len(self.pool)
        self._chosen = None

    # -- selection machinery ----------------------------------------------
    def _probabilities(self) -> np.ndarray:
        """Eq. (3) over algorithms that have produced a result.

        The paper assumes non-negative objectives (runtime, memory).  For
        objectives that can dip <= 0 (the synthetic demo function) the
        recorded bests are shifted to be positive first, preserving the
        ordering "better best => higher probability".
        """
        best = np.array(self.best_outputs, dtype=float)
        seen = np.isfinite(best)
        probs = np.zeros(len(best))
        if not np.any(seen):
            probs[:] = 1.0 / len(best)
            return probs
        vals = best[seen]
        lo = float(np.min(vals))
        if lo <= 0.0:
            spread = float(np.max(vals) - lo)
            vals = vals - lo + max(spread, 1.0) * 1e-3
        inv = 1.0 / vals
        probs[seen] = inv / np.sum(inv)
        return probs

    def _choose(self, target: TaskData, rng: np.random.Generator) -> int:
        raise NotImplementedError

    # -- strategy interface -----------------------------------------------
    def model(self, target: TaskData, rng: np.random.Generator) -> PredictFn | None:
        self._chosen = self._choose(target, rng)
        return self.pool[self._chosen].model(target, rng)

    def notify_proposal(self, x_unit: np.ndarray, rng: np.random.Generator) -> None:
        for strategy in self.pool:  # stateful members stay in sync
            strategy.notify_proposal(x_unit, rng)

    def notify_result(self, x_unit: np.ndarray, y: float | None) -> None:
        for strategy in self.pool:
            strategy.notify_result(x_unit, y)
        if self._chosen is not None and y is not None:
            if y < self.best_outputs[self._chosen]:
                self.best_outputs[self._chosen] = float(y)

    @property
    def chosen_name(self) -> str | None:
        """Name of the algorithm used for the most recent proposal."""
        return None if self._chosen is None else self.pool[self._chosen].name


class EnsembleProposed(_EnsembleBase):
    """Algorithm 1: exploration-rate-gated probabilistic selection."""

    name = "Ensemble (proposed)"
    provenance = "GPTuneCrowd"

    def _choose(self, target: TaskData, rng: np.random.Generator) -> int:
        rate = exploration_rate(len(self.pool), self._n_parameters or 1, target.n)
        if rng.random() < rate:
            return int(rng.integers(0, len(self.pool)))
        return int(rng.choice(len(self.pool), p=self._probabilities()))


class EnsembleToggling(_EnsembleBase):
    """Naive baseline: cycle through the pool sequentially."""

    name = "Ensemble (toggling)"
    provenance = "GPTuneCrowd"

    def __init__(self, pool: list[TLAStrategy] | None = None, **kwargs) -> None:
        super().__init__(pool, **kwargs)
        self._counter = 0

    def prepare(self, sources: list[TaskData], rng: np.random.Generator) -> None:
        # re-preparation must restart the round-robin cycle at member 0;
        # a surviving cursor would skew the toggling baseline on reuse
        super().prepare(sources, rng)
        self._counter = 0

    def _choose(self, target: TaskData, rng: np.random.Generator) -> int:
        idx = self._counter % len(self.pool)
        self._counter += 1
        return idx


class EnsembleProb(_EnsembleBase):
    """Naive baseline: Eq. (3) alone, exploration rate pinned to zero."""

    name = "Ensemble (prob)"
    provenance = "GPTuneCrowd"

    def _choose(self, target: TaskData, rng: np.random.Generator) -> int:
        return int(rng.choice(len(self.pool), p=self._probabilities()))
