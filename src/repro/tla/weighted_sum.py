"""Weighted-sum TLA: static/equal (HiPerBOt [6]) and dynamic (paper Sec. V-B/C).

The combined surrogate is Eq. (1)-(2) of the paper:

    mu(x)    = w_t * mu_t(x) + sum_i w_i * mu_i(x)
    sigma(x) = sigma_t(x)^{w_t} * prod_i sigma_i(x)^{w_i}

``WeightedSumStatic`` uses user-provided weights, or equal weights 1 when
none are given (the paper's ``WeightedSum(static/equal)``).

``WeightedSumDynamic`` is GPTuneCrowd's improvement: at every iteration it
solves the linear regression of Sec. V-C for non-negative weights.  For
each observed target sample ``(x_j, y_j)``, with ``x*`` the incumbent and
``y* = f(x*)`` the observed minimum,

    (y* - y_j) / |y*|  ≈  sum_i w_i * [mu_i(x*) - mu_i(x_j)] / |mu_i(x*)|

(the normalization by ``y*`` and ``G_i(x*)`` from the paper handles the
different output scales of source and target tasks).  The system is
solved with non-negative least squares; a good fit assigns large weights
to surrogates whose landscape around the incumbent agrees with the
target's observations.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize as sopt

from ..core.acquisition import PredictFn
from ..core.history import TaskData
from .base import TLAStrategy, combine_weighted, equal_weight_model

__all__ = ["WeightedSumStatic", "WeightedSumDynamic", "dynamic_weights"]


def dynamic_weights(
    models: list[PredictFn], target: TaskData
) -> np.ndarray | None:
    """Solve the Sec. V-C regression; returns weights or ``None`` if the
    system is degenerate (fewer than two target observations)."""
    if target.n < 2:
        return None
    x_star, y_star = target.best()
    denom_y = max(abs(y_star), 1e-12)
    lhs = (y_star - target.y) / denom_y  # (n,) non-positive entries

    cols = []
    for m in models:
        mu_all, _ = m(np.vstack([x_star[None, :], target.X]))
        mu_star, mu_obs = mu_all[0], mu_all[1:]
        denom = max(abs(mu_star), 1e-12)
        cols.append((mu_star - mu_obs) / denom)
    A = np.stack(cols, axis=1)  # (n, n_models)
    if not np.all(np.isfinite(A)) or not np.all(np.isfinite(lhs)):
        return None
    try:
        w, _ = sopt.nnls(A, lhs)
    except Exception:
        return None
    if not np.any(w > 0):
        return None
    # normalize so the combined scale stays comparable to a single model
    return w * (len(models) / np.sum(w))


class WeightedSumStatic(TLAStrategy):
    """HiPerBOt-style weighted sum with static (default: equal) weights."""

    name = "WeightedSum (equal)"
    provenance = "[6]"

    def __init__(self, weights: list[float] | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.static_weights = None if weights is None else np.asarray(weights, float)
        if weights is not None:
            self.name = "WeightedSum (static)"

    def model(self, target: TaskData, rng: np.random.Generator) -> PredictFn | None:
        target_gp = self._target_gp(target, rng)
        if target_gp is None:
            return equal_weight_model(self.source_gps, store=self.store)
        models = [gp.predict for gp in self.source_gps] + [target_gp.predict]
        if self.static_weights is not None:
            if self.static_weights.shape != (len(models),):
                raise ValueError(
                    f"need {len(models)} static weights "
                    f"(sources then target), got {self.static_weights.shape}"
                )
            w = self.static_weights
        else:
            w = np.ones(len(models))
        return combine_weighted(models, w, store=self.store)


class WeightedSumDynamic(TLAStrategy):
    """GPTuneCrowd's weighted sum with per-iteration dynamic weights."""

    name = "WeightedSum (dynamic)"
    provenance = "GPTuneCrowd"

    def model(self, target: TaskData, rng: np.random.Generator) -> PredictFn | None:
        target_gp = self._target_gp(target, rng)
        if target_gp is None:
            return equal_weight_model(self.source_gps, store=self.store)
        # the Sec. V-C regression re-evaluates the frozen source
        # surrogates at the growing target history every iteration;
        # the store-memoized predictors only compute the new rows
        models = self._source_predict_fns() + [target_gp.predict]
        w = dynamic_weights(models, target)
        if w is None:  # not enough target data yet: paper's equal fallback
            w = np.ones(len(models))
        return combine_weighted(models, w, store=self.store)
