"""Transfer-learning strategy interface (system S7, paper Sec. V).

A :class:`TLAStrategy` turns *source-task datasets* (queried from the
crowd repository) plus the growing *target-task history* into a surrogate
``predict(X) -> (mean, std)`` that the shared acquisition search consumes.

The lifecycle, driven by :class:`repro.tla.tuner.TransferTuner`:

1. :meth:`prepare` — once, with the source datasets (pre-train source GPs).
2. per iteration: :meth:`model` — build/refresh the transfer surrogate
   from current target data; the tuner then searches and evaluates.
3. :meth:`notify_proposal` / :meth:`notify_result` — hooks for stateful
   strategies (Multitask(PS) grows pseudo samples on proposals; the
   ensemble updates its per-algorithm best outputs on results).

When the target task has no data at all, every strategy falls back to the
equal-weight combination of the source surrogates — the paper's choice
for the first function evaluation (Sec. VI-A).

Fast-pool controls (all off by default, preserving bit-identical
behavior):

* ``store`` — a shared :class:`repro.tla.store.SourceModelStore`; source
  GPs for identical data are fitted once across strategies/repeats and
  frozen predictions are batched and memoized.
* ``refit_every`` — refit cadence for the per-iteration *target-side*
  GPs (the same knob the LCM members expose): between boundaries the
  hyperparameters stay frozen and new target observations are absorbed
  through rank-1 :meth:`GaussianProcess.update` appends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core import perf
from ..core.acquisition import PredictFn
from ..core.combine import normalized_weights
from ..core.gp import GaussianProcess, GPFitError
from ..core.history import TaskData
from ..core.kernels import kernel_from_name
from ..core.sparse import make_surrogate, resolve_surrogate_kind
from .store import SourceModelStore, frozen_view

__all__ = ["TLAStrategy", "fit_source_gps", "equal_weight_model", "combine_weighted"]


def fit_source_gps(
    sources: list[TaskData],
    rng: np.random.Generator,
    *,
    kernel: str = "rbf",
    max_fun: int = 80,
    store: SourceModelStore | None = None,
) -> list[GaussianProcess]:
    """Pre-train one GP surrogate per source dataset.

    With a ``store``, datasets already fitted (same content, kernel and
    ``max_fun``) reuse the cached GP instead of re-running the MLE.  The
    per-source seed is drawn from ``rng`` unconditionally so cache hits
    never shift the caller's random stream.
    """
    gps = []
    for src in sources:
        if src.n == 0:
            raise ValueError(f"source dataset {src.label!r} is empty")
        seed = int(rng.integers(0, 2**31 - 1))
        if store is not None:
            gp = store.fit_gp(src.X, src.y, seed, kernel=kernel, max_fun=max_fun)
        else:
            gp = GaussianProcess(
                kernel_from_name(kernel, src.dim), max_fun=max_fun, seed=seed
            )
            gp.fit(src.X, src.y)
            perf.incr("tla_source_fits")
        gps.append(gp)
    return gps


def combine_weighted(
    models: list[PredictFn],
    weights: np.ndarray,
    *,
    store: SourceModelStore | None = None,
) -> PredictFn:
    """The paper's Eq. (1)-(2): weighted arithmetic mean of the means and
    weighted geometric mean of the standard deviations.

    Weights must be non-negative with a positive sum; they are
    normalized to sum 1 (a convex combination), so the combined surrogate
    lives on the same scale as its members.

    With a ``store``, members that are frozen fitted GPs are served
    through their pre-extracted :class:`repro.tla.store.FrozenGP` fast
    path: the per-model cross-covariance against the candidate batch is
    computed in one vectorized pass over cached train-side quantities,
    and the Eq. (1)-(2) reduction is fused over the stacked per-model
    means/log-stds.  The fast path replays the plain per-model arithmetic
    exactly, so enabling it does not change results.
    """
    weights = normalized_weights(weights, len(models))

    entries: list = list(models)
    if store is not None:
        for i, m in enumerate(entries):
            gp = getattr(m, "__self__", None) or getattr(m, "__wrapped_gp__", None)
            if isinstance(gp, GaussianProcess):
                frozen = frozen_view(gp)
                if frozen is not None:
                    entries[i] = frozen.predict
        batched = True
    else:
        batched = False

    def predict(X: np.ndarray):
        if batched:
            perf.incr("tla_batched_predicts")
        mean = np.zeros(X.shape[0])
        log_std = np.zeros(X.shape[0])
        for w, m in zip(weights, entries):
            mu, sd = m(X)
            mean += w * mu
            log_std += w * np.log(np.maximum(sd, 1e-12))
        return mean, np.exp(log_std)

    return predict


def equal_weight_model(
    source_gps: list[GaussianProcess],
    *,
    store: SourceModelStore | None = None,
) -> PredictFn:
    """Equal-weight combination of the source surrogates only.

    Used for the very first target evaluation, when neither dynamic
    weights nor an LCM can be formed (paper Sec. VI-A note).
    """
    if not source_gps:
        raise ValueError("need at least one source surrogate")
    return combine_weighted(
        [gp.predict for gp in source_gps], np.ones(len(source_gps)), store=store
    )


class TLAStrategy(ABC):
    """Base class for the TLA pool entries of the paper's Table I."""

    #: pool name, e.g. "Multitask (TS)"
    name: str = "abstract"
    #: provenance per Table I ("[11]", "[6]", "[12]", or "GPTuneCrowd")
    provenance: str = ""

    def __init__(
        self,
        *,
        kernel: str = "rbf",
        gp_max_fun: int = 80,
        refit_every: int = 1,
        store: SourceModelStore | None = None,
        surrogate: str = "auto",
        n_dense_max: int = 1000,
        n_inducing: int = 100,
    ) -> None:
        self.kernel = kernel
        self.gp_max_fun = gp_max_fun
        self.refit_every = max(int(refit_every), 1)
        self.store = store
        #: target-side surrogate policy: ``"auto"`` keeps the dense GP
        #: (bit-identical) up to ``n_dense_max`` target observations and
        #: switches to the sparse inducing-point GP past it — target
        #: histories grown from a large crowd transfer can be huge even
        #: when each tuning run adds only tens of points
        self.surrogate = surrogate
        self.n_dense_max = int(n_dense_max)
        self.n_inducing = int(n_inducing)
        self.sources: list[TaskData] = []
        self.source_gps: list[GaussianProcess] = []
        #: set once prepare()/prepare_from_models() has run; the transfer
        #: tuner skips re-preparation for already-prepared strategies
        self.prepared = False
        self._tgt_gp: GaussianProcess | None = None
        self._tgt_kind: str | None = None
        self._tgt_iter = 0

    # -- lifecycle -----------------------------------------------------------
    def prepare(self, sources: list[TaskData], rng: np.random.Generator) -> None:
        """One-time setup with the queried source datasets."""
        if not sources:
            raise ValueError(f"{self.name}: transfer learning needs >= 1 source task")
        dims = {s.dim for s in sources}
        if len(dims) != 1:
            raise ValueError(f"{self.name}: source dims differ: {dims}")
        self.sources = list(sources)
        self.source_gps = fit_source_gps(
            sources, rng, kernel=self.kernel, max_fun=self.gp_max_fun, store=self.store
        )
        self._tgt_gp = None
        self._tgt_iter = 0
        self.prepared = True

    def prepare_from_store(
        self,
        store: SourceModelStore,
        sources: list[TaskData],
        rng: np.random.Generator,
    ) -> None:
        """Prepare with source surrogates shared through ``store``.

        Sugar for attaching the store then calling :meth:`prepare`; pool
        sweeps use it to fit each source dataset exactly once across
        many strategies and repeats.
        """
        self.store = store
        self.prepare(sources, rng)

    @abstractmethod
    def model(self, target: TaskData, rng: np.random.Generator) -> PredictFn | None:
        """Build the transfer surrogate for the current target data.

        Returns ``None`` if no model can be formed (the tuner then falls
        back to the equal-weight source combination, or random search if
        even that fails).
        """

    # -- optional hooks ----------------------------------------------------------
    def notify_proposal(self, x_unit: np.ndarray, rng: np.random.Generator) -> None:
        """Called with the unit-cube point chosen for evaluation."""

    def notify_result(self, x_unit: np.ndarray, y: float | None) -> None:
        """Called with the evaluation outcome (``None`` on failure)."""

    # -- fallback shared by subclasses ----------------------------------------------
    def _source_predict_fns(self) -> list[PredictFn]:
        """One ``PredictFn`` per source GP, memoized through the store.

        Strategies that re-evaluate the frozen source surrogates at
        recurring points every iteration (``dynamic_weights`` over the
        growing target history) use these so only the new rows are
        computed.
        """
        if self.store is None:
            return [gp.predict for gp in self.source_gps]
        return [self.store.cached_predict_fn(gp) for gp in self.source_gps]

    def _target_gp(
        self, target: TaskData, rng: np.random.Generator
    ) -> GaussianProcess | None:
        """Fit (or incrementally refresh) the target-task GP.

        On ``refit_every`` boundaries the GP is refit from scratch with
        hyperparameter MLE — at the default cadence of 1 this happens
        every call, exactly the pre-store behavior.  Between boundaries
        the hyperparameters stay frozen: an unchanged history reuses the
        model outright, appended observations are absorbed through
        O(n^2) rank-1 :meth:`GaussianProcess.update` appends, and a
        diverged history falls back to a non-optimizing refit.

        The per-call seed is drawn from ``rng`` unconditionally so the
        cadence never shifts the caller's random stream.
        """
        if target.n == 0:
            return None
        seed = int(rng.integers(0, 2**31 - 1))
        kind = resolve_surrogate_kind(self.surrogate, target.n, self.n_dense_max)
        if self._tgt_gp is not None and kind != self._tgt_kind:
            self._tgt_gp = None  # history crossed n_dense_max: rebuild sparse
        refit = self._tgt_gp is None or (self._tgt_iter % self.refit_every == 0)
        self._tgt_iter += 1
        gp = self._tgt_gp
        if not refit and gp is not None and gp.fitted:
            n_new = gp.extends_training_data(target.X, target.y)
            if n_new == 0:
                return gp
            if n_new is not None:
                try:
                    gp.update(target.X[-n_new:], target.y[-n_new:])
                except GPFitError:
                    return None
                perf.incr("tla_incremental_refits")
                return gp
            # history diverged: refit without re-optimizing hyperparameters
            gp.optimize = False
            try:
                gp.fit(target.X, target.y)
            except GPFitError:
                return None
            finally:
                gp.optimize = True
            return gp
        prev = self._tgt_gp
        if kind == "dense":
            gp = GaussianProcess(
                kernel_from_name(self.kernel, target.dim),
                max_fun=self.gp_max_fun,
                seed=seed,
            )
        else:
            gp = make_surrogate(
                kind,
                self.kernel,
                seed=seed,
                max_fun=self.gp_max_fun,
                n_inducing=self.n_inducing,
            )
        if (
            self.refit_every > 1
            and prev is not None
            and prev.fitted
            and isinstance(gp, GaussianProcess)
            and isinstance(prev, GaussianProcess)
        ):
            # boundary refit under an amortized cadence: hyperparameters
            # move little between boundaries, so start the MLE at the
            # previous optimum and skip the random restarts
            gp.kernel.set_theta(prev.kernel.get_theta())
            gp.noise_variance = prev.noise_variance
            gp.n_restarts = 0
        try:
            gp.fit(target.X, target.y)
        except GPFitError:
            return None
        self._tgt_gp = gp
        self._tgt_kind = kind
        return gp

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"
