"""Transfer-learning strategy interface (system S7, paper Sec. V).

A :class:`TLAStrategy` turns *source-task datasets* (queried from the
crowd repository) plus the growing *target-task history* into a surrogate
``predict(X) -> (mean, std)`` that the shared acquisition search consumes.

The lifecycle, driven by :class:`repro.tla.tuner.TransferTuner`:

1. :meth:`prepare` — once, with the source datasets (pre-train source GPs).
2. per iteration: :meth:`model` — build/refresh the transfer surrogate
   from current target data; the tuner then searches and evaluates.
3. :meth:`notify_proposal` / :meth:`notify_result` — hooks for stateful
   strategies (Multitask(PS) grows pseudo samples on proposals; the
   ensemble updates its per-algorithm best outputs on results).

When the target task has no data at all, every strategy falls back to the
equal-weight combination of the source surrogates — the paper's choice
for the first function evaluation (Sec. VI-A).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.acquisition import PredictFn
from ..core.gp import GaussianProcess, GPFitError
from ..core.history import TaskData
from ..core.kernels import kernel_from_name

__all__ = ["TLAStrategy", "fit_source_gps", "equal_weight_model", "combine_weighted"]


def fit_source_gps(
    sources: list[TaskData],
    rng: np.random.Generator,
    *,
    kernel: str = "rbf",
    max_fun: int = 80,
) -> list[GaussianProcess]:
    """Pre-train one GP surrogate per source dataset."""
    gps = []
    for src in sources:
        if src.n == 0:
            raise ValueError(f"source dataset {src.label!r} is empty")
        gp = GaussianProcess(
            kernel_from_name(kernel, src.dim),
            max_fun=max_fun,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        gp.fit(src.X, src.y)
        gps.append(gp)
    return gps


def combine_weighted(
    models: list[PredictFn], weights: np.ndarray
) -> PredictFn:
    """The paper's Eq. (1)-(2): weighted arithmetic mean of the means and
    weighted geometric mean of the standard deviations."""
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (len(models),):
        raise ValueError(f"need {len(models)} weights, got shape {weights.shape}")

    def predict(X: np.ndarray):
        mean = np.zeros(X.shape[0])
        log_std = np.zeros(X.shape[0])
        for w, m in zip(weights, models):
            mu, sd = m(X)
            mean += w * mu
            log_std += w * np.log(np.maximum(sd, 1e-12))
        return mean, np.exp(log_std)

    return predict


def equal_weight_model(source_gps: list[GaussianProcess]) -> PredictFn:
    """Equal-weight combination of the source surrogates only.

    Used for the very first target evaluation, when neither dynamic
    weights nor an LCM can be formed (paper Sec. VI-A note).
    """
    if not source_gps:
        raise ValueError("need at least one source surrogate")
    return combine_weighted([gp.predict for gp in source_gps], np.ones(len(source_gps)))


class TLAStrategy(ABC):
    """Base class for the TLA pool entries of the paper's Table I."""

    #: pool name, e.g. "Multitask (TS)"
    name: str = "abstract"
    #: provenance per Table I ("[11]", "[6]", "[12]", or "GPTuneCrowd")
    provenance: str = ""

    def __init__(self, *, kernel: str = "rbf", gp_max_fun: int = 80) -> None:
        self.kernel = kernel
        self.gp_max_fun = gp_max_fun
        self.sources: list[TaskData] = []
        self.source_gps: list[GaussianProcess] = []
        #: set once prepare()/prepare_from_models() has run; the transfer
        #: tuner skips re-preparation for already-prepared strategies
        self.prepared = False

    # -- lifecycle -----------------------------------------------------------
    def prepare(self, sources: list[TaskData], rng: np.random.Generator) -> None:
        """One-time setup with the queried source datasets."""
        if not sources:
            raise ValueError(f"{self.name}: transfer learning needs >= 1 source task")
        dims = {s.dim for s in sources}
        if len(dims) != 1:
            raise ValueError(f"{self.name}: source dims differ: {dims}")
        self.sources = list(sources)
        self.source_gps = fit_source_gps(
            sources, rng, kernel=self.kernel, max_fun=self.gp_max_fun
        )
        self.prepared = True

    @abstractmethod
    def model(self, target: TaskData, rng: np.random.Generator) -> PredictFn | None:
        """Build the transfer surrogate for the current target data.

        Returns ``None`` if no model can be formed (the tuner then falls
        back to the equal-weight source combination, or random search if
        even that fails).
        """

    # -- optional hooks ----------------------------------------------------------
    def notify_proposal(self, x_unit: np.ndarray, rng: np.random.Generator) -> None:
        """Called with the unit-cube point chosen for evaluation."""

    def notify_result(self, x_unit: np.ndarray, y: float | None) -> None:
        """Called with the evaluation outcome (``None`` on failure)."""

    # -- fallback shared by subclasses ----------------------------------------------
    def _target_gp(
        self, target: TaskData, rng: np.random.Generator
    ) -> GaussianProcess | None:
        if target.n == 0:
            return None
        gp = GaussianProcess(
            kernel_from_name(self.kernel, target.dim),
            max_fun=self.gp_max_fun,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        try:
            gp.fit(target.X, target.y)
        except GPFitError:
            return None
        return gp

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r}>"
