"""Shared source-surrogate store for the fast TLA pool (paper Sec. V).

Every strategy in the paper's Table I pool pre-trains one GP per source
dataset during :meth:`TLAStrategy.prepare`.  Without sharing, an
``Ensemble(proposed)`` run fits every source four times (the shell plus
its three members), and a full Table-I sweep fits them once per strategy
per repeat.  The :class:`SourceModelStore` removes that redundancy:

* **Content-keyed model cache** — fitted GPs are cached under
  ``(sha1(X, y), kernel, max_fun)``, so any strategy (or repeat) asking
  for a surrogate of the *same data with the same model settings* gets
  the already-fitted GP back instead of re-running the MLE.  Hits and
  misses are counted (``tla_source_cache_hits`` / ``tla_source_fits``).
* **Frozen-prediction memo** — source GPs never change after
  ``prepare()``, so their predictions at re-used points (the growing
  target history that ``dynamic_weights`` re-evaluates every iteration,
  the stacking residual anchor points) are memoized per row with a
  bounded LRU.
* **Frozen fast predictors** — :class:`FrozenGP` pre-extracts a fitted
  GP's ``(alpha, L, scaled train inputs, y-statistics)`` once and serves
  batch predictions with the train-side quantities cached and the
  triangular solve done through raw LAPACK ``trtrs``.  The arithmetic
  mirrors :meth:`GaussianProcess.predict` operation for operation, so
  the fast path is bit-identical to the plain one — pure amortization,
  not an approximation.

Determinism contract: strategies draw their GP seeds from the shared
``rng`` stream *before* consulting the store, so enabling the store
never shifts the random stream.  A cache hit reuses the GP fitted by
the first requester (whose MLE used the first requester's seed); with
the store disabled every strategy fits its own GP exactly as before,
bit for bit.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..core import perf
from ..core.frozen import FrozenGP, frozen_view
from ..core.gp import GaussianProcess
from ..core.kernels import kernel_from_name

__all__ = ["SourceModelStore", "FrozenGP", "frozen_view"]


def _data_key(X: np.ndarray, y: np.ndarray) -> bytes:
    """Content hash of a dataset (the cache key's data component)."""
    h = hashlib.sha1()
    X = np.ascontiguousarray(np.asarray(X, dtype=float))
    y = np.ascontiguousarray(np.asarray(y, dtype=float).ravel())
    h.update(str(X.shape).encode())
    h.update(X.tobytes())
    h.update(y.tobytes())
    return h.digest()


class SourceModelStore:
    """Content-keyed cache of fitted source GPs + frozen-prediction memo.

    Thread-safe for concurrent readers/writers (a single lock guards the
    two LRU maps; GP fitting itself happens outside the lock).

    Parameters
    ----------
    max_models:
        Bound on cached fitted GPs (LRU-evicted beyond this).
    max_memo_rows:
        Bound on memoized per-point predictions across all models.
    """

    def __init__(self, *, max_models: int = 128, max_memo_rows: int = 100_000) -> None:
        self.max_models = int(max_models)
        self.max_memo_rows = int(max_memo_rows)
        self._models: OrderedDict[tuple, GaussianProcess] = OrderedDict()
        self._memo: OrderedDict[tuple, tuple[float, float]] = OrderedDict()
        self._lock = threading.Lock()

    # -- pickling (process-pool benchmarks ship stores to workers) --------
    def __getstate__(self):
        with self._lock:
            return {
                "max_models": self.max_models,
                "max_memo_rows": self.max_memo_rows,
                "_models": OrderedDict(self._models),
                "_memo": OrderedDict(self._memo),
            }

    def __setstate__(self, state):
        self.max_models = state["max_models"]
        self.max_memo_rows = state["max_memo_rows"]
        self._models = state["_models"]
        self._memo = state["_memo"]
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    # -- fitted-model cache ----------------------------------------------
    def fit_gp(
        self,
        X: np.ndarray,
        y: np.ndarray,
        seed: int,
        *,
        kernel: str = "rbf",
        max_fun: int = 80,
        counter: str = "source",
    ) -> GaussianProcess:
        """A GP fitted to ``(X, y)``, reusing a cached fit when available.

        ``seed`` must be drawn from the caller's rng *unconditionally*
        (also on what turns out to be a cache hit), so the store never
        shifts the caller's random stream.  ``counter`` names the perf
        counters (``tla_{counter}_fits`` / ``tla_{counter}_cache_hits``).
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        key = (_data_key(X, y), str(kernel), int(max_fun))
        with self._lock:
            gp = self._models.get(key)
            if gp is not None:
                self._models.move_to_end(key)
        if gp is not None:
            perf.incr(f"tla_{counter}_cache_hits")
            return gp
        gp = GaussianProcess(
            kernel_from_name(kernel, X.shape[1]), max_fun=max_fun, seed=seed
        )
        gp.fit(X, y)
        perf.incr(f"tla_{counter}_fits")
        with self._lock:
            self._models[key] = gp
            while len(self._models) > self.max_models:
                self._models.popitem(last=False)
            n_models = len(self._models)
        perf.gauge("tla_store_models", n_models)
        return gp

    # -- frozen-prediction memo ------------------------------------------
    def predict(self, gp: GaussianProcess, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Predict with ``gp`` at ``X``, memoizing per-row results.

        Only worthwhile for *frozen* GPs evaluated at recurring points
        (the target history, the incumbent): rows already seen are
        served from the memo and only the new rows are computed, in one
        batch.  The memo key includes the GP's fit version, so a GP that
        is ever refit simply stops hitting its stale entries.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        frozen = frozen_view(gp)
        token = (id(gp), gp.version)
        keys = [token + (row.tobytes(),) for row in X]
        mean = np.empty(X.shape[0])
        std = np.empty(X.shape[0])
        miss: list[int] = []
        with self._lock:
            for i, k in enumerate(keys):
                hit = self._memo.get(k)
                if hit is None:
                    miss.append(i)
                else:
                    self._memo.move_to_end(k)
                    mean[i], std[i] = hit
        n_hits = X.shape[0] - len(miss)
        if n_hits:
            perf.incr("tla_pred_memo_hits", n_hits)
        if miss:
            predictor = frozen.predict if frozen is not None else gp.predict
            mu, sd = predictor(X[miss])
            mean[miss] = mu
            std[miss] = sd
            with self._lock:
                for j, i in enumerate(miss):
                    self._memo[keys[i]] = (float(mu[j]), float(sd[j]))
                while len(self._memo) > self.max_memo_rows:
                    self._memo.popitem(last=False)
        return mean, std

    def cached_predict_fn(self, gp: GaussianProcess):
        """A ``PredictFn`` bound to :meth:`predict` for this store."""

        def predict(X: np.ndarray):
            return self.predict(gp, X)

        predict.__wrapped_gp__ = gp
        return predict
