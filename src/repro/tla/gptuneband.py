"""GPTuneBand-style multi-fidelity bandit tuning (Zhu et al. [13]).

The GPTune package the paper ships with also contains GPTuneBand, which
"combines multitask learning with a multi-armed bandit strategy": cheap
low-fidelity evaluations (fewer time steps, smaller meshes) screen many
configurations, successive halving promotes the best to higher
fidelities, and the LCM models *fidelity levels as correlated tasks* so
low-fidelity observations shape the high-fidelity surrogate.

This module implements that scheme:

* :class:`MultiFidelityObjective` — an objective with a fidelity knob
  ``fraction in (0, 1]``; evaluating at fraction ``f`` costs ``f`` of a
  full evaluation (the budget is accounted in full-evaluation
  equivalents).
* :class:`GPTuneBand` — successive-halving brackets over a geometric
  fidelity ladder, with LCM-based promotion and final-fidelity search.

Applications expose fidelity through
:meth:`repro.apps.base.HPCApplication.fidelity_objective` (NIMROD scales
its time-step count; synthetic functions add a vanishing low-fidelity
bias), so the bandit tuner runs against the same substrate as everything
else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..core.lcm import LCM, LCMFitError
from ..core.space import Space

__all__ = ["MultiFidelityObjective", "GPTuneBand", "BanditResult", "halving_schedule"]

FidelityFn = Callable[[Mapping[str, Any], Mapping[str, Any], float], float | None]


@dataclass
class MultiFidelityObjective:
    """A tunable objective with a fidelity fraction.

    ``fn(task, config, fraction)`` returns the (possibly noisy) objective
    measured at the given fidelity, or ``None`` on failure.  ``fraction``
    is also the relative cost of the evaluation.
    """

    fn: FidelityFn
    space: Space
    task: dict[str, Any]

    def __call__(self, config: Mapping[str, Any], fraction: float) -> float | None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fidelity fraction must be in (0, 1], got {fraction}")
        return self.fn(self.task, config, fraction)


def halving_schedule(
    n_configs: int, n_rungs: int, eta: float = 3.0
) -> list[tuple[int, float]]:
    """Successive-halving rungs as ``(n_survivors, fidelity_fraction)``.

    Rung ``r`` keeps ``n / eta^r`` configurations at fidelity
    ``eta^(r - n_rungs + 1)`` — the standard geometric ladder ending at
    full fidelity with ``n / eta^(n_rungs-1)`` survivors.
    """
    if n_configs < 1 or n_rungs < 1:
        raise ValueError("n_configs and n_rungs must be >= 1")
    if eta <= 1.0:
        raise ValueError("eta must be > 1")
    out = []
    for r in range(n_rungs):
        survivors = max(int(n_configs / eta**r), 1)
        fraction = float(eta ** (r - n_rungs + 1))
        out.append((survivors, min(fraction, 1.0)))
    return out


@dataclass
class BanditResult:
    """Outcome of a GPTuneBand run."""

    best_config: dict[str, Any] | None
    best_output: float
    #: full-evaluation equivalents actually spent
    cost_spent: float
    #: (config, fraction, output) for every evaluation, in order
    evaluations: list[tuple[dict[str, Any], float, float | None]] = field(
        default_factory=list
    )

    @property
    def n_evaluations(self) -> int:
        return len(self.evaluations)

    def full_fidelity_history(self) -> list[tuple[dict[str, Any], float | None]]:
        return [(c, y) for c, f, y in self.evaluations if f >= 1.0]


class GPTuneBand:
    """Multi-fidelity bandit tuner over a fidelity ladder.

    Parameters
    ----------
    objective:
        The multi-fidelity objective.
    n_rungs:
        Ladder depth (3 rungs with ``eta=3`` means fidelities
        1/9, 1/3, 1).
    eta:
        Halving rate.
    bracket_size:
        Configurations entering each bracket's lowest rung.
    use_lcm:
        Model fidelities as LCM tasks and propose new low-rung
        configurations from the joint model after the first bracket
        (GPTuneBand's multitask component); with ``False`` the tuner
        degenerates to plain successive halving with random proposals.
    """

    def __init__(
        self,
        objective: MultiFidelityObjective,
        *,
        n_rungs: int = 3,
        eta: float = 3.0,
        bracket_size: int = 9,
        use_lcm: bool = True,
        lcm_max_fun: int = 40,
    ) -> None:
        if n_rungs < 1:
            raise ValueError("n_rungs must be >= 1")
        self.objective = objective
        self.n_rungs = n_rungs
        self.eta = eta
        self.bracket_size = bracket_size
        self.use_lcm = use_lcm
        self.lcm_max_fun = lcm_max_fun
        # per-rung datasets: rung index -> (list of unit rows, list of y)
        self._data: list[tuple[list[np.ndarray], list[float]]] = [
            ([], []) for _ in range(n_rungs)
        ]

    # -- modeling -------------------------------------------------------------
    def _fit_lcm(self, rng: np.random.Generator) -> LCM | None:
        if not self.use_lcm:
            return None
        datasets = []
        n_total = 0
        for xs, ys in self._data:
            X = np.vstack(xs) if xs else np.empty((0, self.objective.space.dim))
            y = np.asarray(ys, dtype=float)
            n_total += y.size
            datasets.append((X, y))
        if n_total < 4:
            return None
        lcm = LCM(
            self.n_rungs,
            self.objective.space.dim,
            optimize=True,
            max_fun=self.lcm_max_fun,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        try:
            lcm.fit(datasets)
        except (LCMFitError, ValueError):
            return None
        return lcm

    def _propose_batch(
        self, n: int, rng: np.random.Generator
    ) -> list[dict[str, Any]]:
        """New lowest-rung configurations: LCM-guided when possible."""
        space = self.objective.space
        lcm = self._fit_lcm(rng)
        if lcm is None:
            return [space.sample(rng) for _ in range(n)]
        # score a random pool by the top rung's predicted mean minus an
        # exploration bonus, keep the n best
        pool = max(n * 16, 64)
        U = rng.random((pool, space.dim))
        mean, std = lcm.predict(self.n_rungs - 1, U)
        score = mean - std
        idx = np.argsort(score)[:n]
        return [space.from_unit(U[i]) for i in idx]

    # -- main loop ---------------------------------------------------------------
    def tune(self, budget: float, *, seed: int | None = None) -> BanditResult:
        """Spend ``budget`` full-evaluation equivalents across brackets."""
        if budget <= 0:
            raise ValueError("budget must be positive")
        rng = np.random.default_rng(seed)
        space = self.objective.space
        result = BanditResult(best_config=None, best_output=math.inf, cost_spent=0.0)
        schedule = halving_schedule(self.bracket_size, self.n_rungs, self.eta)

        while result.cost_spent < budget:
            candidates = self._propose_batch(schedule[0][0], rng)
            scores: list[float] = []
            for rung, (n_keep, fraction) in enumerate(schedule):
                candidates = candidates[:n_keep]
                scores = []
                for config in candidates:
                    if result.cost_spent >= budget:
                        break
                    y = self.objective(config, fraction)
                    result.cost_spent += fraction
                    result.evaluations.append((dict(config), fraction, y))
                    if y is None:
                        scores.append(math.inf)
                        continue
                    scores.append(float(y))
                    self._data[rung][0].append(space.to_unit(config))
                    self._data[rung][1].append(float(y))
                    if fraction >= 1.0 and y < result.best_output:
                        result.best_output = float(y)
                        result.best_config = dict(config)
                # promote the best survivors to the next rung
                order = np.argsort(scores) if scores else []
                candidates = [candidates[i] for i in order]
                if result.cost_spent >= budget:
                    break
        return result
