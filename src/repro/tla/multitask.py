"""LCM-based multitask TLA: Multitask(PS) [11] and Multitask(TS) (Sec. V-A).

Both variants model source and target tasks jointly with the Linear
Coregionalization Model of :mod:`repro.core.lcm`; they differ in what
stands in for the source tasks' knowledge:

* **Multitask(PS)** — "pseudo samples": only the *pre-trained source
  surrogate models* are available (GPTune's 2021 history-database mode).
  The source GP means act as black-box functions; at every iteration the
  strategy appends one pseudo sample per source at the point chosen for
  the target, and the LCM is fit on pseudo + true-target samples.
* **Multitask(TS)** — "true samples": GPTuneCrowd's improvement.  The
  shared database gives access to all collected source observations, so
  the LCM is fit directly on the full unequal-sized datasets (sources
  full, target growing from zero).  The evaluation (paper Fig. 3)
  shows TS dominating PS, which our benchmarks reproduce.

``max_source_samples`` bounds LCM cost on huge source datasets (e.g.
NIMROD's 500 samples): a uniform subsample that always keeps the source
optimum.  Set to ``None`` to use everything, as the paper does.
"""

from __future__ import annotations

import numpy as np

from ..core import perf
from ..core.acquisition import PredictFn
from ..core.history import TaskData
from ..core.lcm import LCM, LCMFitError
from .base import TLAStrategy, equal_weight_model

__all__ = ["MultitaskPS", "MultitaskTS"]


class _MultitaskBase(TLAStrategy):
    """Shared LCM plumbing: warm-started refits, target-task prediction.

    Between ``refit_every`` boundaries hyperparameters are frozen, and a
    step that only *appends* observations (the target's new sample; PS's
    pseudo samples) skips the O(n^3) refactorization entirely: the cached
    LCM grows its joint Cholesky incrementally (:meth:`LCM.update_many`).
    """

    def __init__(
        self,
        *,
        n_latent: int = 1,
        lcm_max_fun: int = 50,
        max_source_samples: int | None = 150,
        lcm_n_restarts: int = 0,
        lcm_n_jobs: int | None = None,
        **kwargs,
    ) -> None:
        # ``refit_every`` is the base-class knob (shared with the GP-only
        # strategies' target refits); here it gates the LCM MLE cadence
        super().__init__(**kwargs)
        self.n_latent = n_latent
        self.lcm_max_fun = lcm_max_fun
        self.max_source_samples = max_source_samples
        self.lcm_n_restarts = int(lcm_n_restarts)
        self.lcm_n_jobs = lcm_n_jobs
        self._lcm: LCM | None = None
        self._iteration = 0

    def _fit_lcm(
        self,
        source_sets: list[tuple[np.ndarray, np.ndarray]],
        target: TaskData,
        rng: np.random.Generator,
    ) -> PredictFn | None:
        n_tasks = len(source_sets) + 1
        target_index = n_tasks - 1
        dim = target.dim if target.n else source_sets[0][0].shape[1]
        refit = self._lcm is None or (self._iteration % self.refit_every == 0)
        self._iteration += 1
        seed = int(rng.integers(0, 2**31 - 1))
        datasets = source_sets + [(target.X, target.y)]

        if not refit and self._lcm is not None:
            # hyperparameters are frozen this iteration; if the datasets
            # only grew by appended rows, grow the cached factorization
            # instead of refactorizing the full joint covariance
            appends = self._lcm.extends_fitted(datasets)
            if appends is not None:
                lcm = self._lcm
                try:
                    lcm.update_many(appends)
                except (LCMFitError, ValueError):
                    pass  # fall through to the full (non-optimizing) fit
                else:
                    perf.incr("tla_incremental_refits")
                    return lambda X: lcm.predict(target_index, X)

        lcm = LCM(
            n_tasks,
            dim,
            n_latent=self.n_latent,
            optimize=refit,
            max_fun=self.lcm_max_fun,
            n_restarts=self.lcm_n_restarts,
            n_jobs=self.lcm_n_jobs,
            seed=seed,
        )
        if self._lcm is not None:
            lcm.warm_start_from(self._lcm)
        try:
            lcm.fit(datasets)
        except (LCMFitError, ValueError):
            return None
        self._lcm = lcm
        return lambda X: lcm.predict(target_index, X)


class MultitaskPS(_MultitaskBase):
    """Multitask learning on pseudo samples from source surrogates [11]."""

    name = "Multitask (PS)"
    provenance = "[11]"

    def __init__(self, *, n_pseudo_init: int = 8, **kwargs) -> None:
        super().__init__(**kwargs)
        self.n_pseudo_init = n_pseudo_init
        self._pseudo: list[tuple[list[np.ndarray], list[float]]] = []

    def prepare(self, sources: list[TaskData], rng: np.random.Generator) -> None:
        super().prepare(sources, rng)
        self._seed_pseudo(sources[0].dim, rng)

    def prepare_from_models(
        self, models, dim: int, rng: np.random.Generator
    ) -> None:
        """Prepare from pre-trained surrogate models alone (no raw data).

        This is the pure history-database mode of [11]: the crowd
        repository ships only black-box surrogate models (see
        :class:`repro.crowd.models.ModelStore`), never the samples.
        """
        if not models:
            raise ValueError("need at least one pre-trained source model")
        self.sources = []
        self.source_gps = list(models)
        self._seed_pseudo(dim, rng)
        self.prepared = True

    def _seed_pseudo(self, dim: int, rng: np.random.Generator) -> None:
        # Seed each source with a few pseudo samples so the first LCM fit
        # has something to coregionalize; all values come from the source
        # GP mean — never from the raw source data, per the PS contract.
        self._pseudo = []
        for gp in self.source_gps:
            X0 = rng.random((self.n_pseudo_init, dim))
            y0 = gp.predict_mean(X0)
            self._pseudo.append(([x for x in X0], [float(v) for v in y0]))

    def notify_proposal(self, x_unit: np.ndarray, rng: np.random.Generator) -> None:
        # "The LCM model is used to predict the next sample for all the
        # source and target tasks": append the source-GP mean at the newly
        # proposed point as a pseudo sample for every source task.
        for gp, (xs, ys) in zip(self.source_gps, self._pseudo):
            xs.append(np.asarray(x_unit, dtype=float))
            ys.append(float(gp.predict_mean(x_unit[None, :])[0]))

    def model(self, target: TaskData, rng: np.random.Generator) -> PredictFn | None:
        if target.n == 0:
            return equal_weight_model(self.source_gps, store=self.store)
        source_sets = [
            (np.vstack(xs), np.asarray(ys, dtype=float)) for xs, ys in self._pseudo
        ]
        return self._fit_lcm(source_sets, target, rng)


class MultitaskTS(_MultitaskBase):
    """Multitask learning on the sources' true samples (GPTuneCrowd)."""

    name = "Multitask (TS)"
    provenance = "GPTuneCrowd"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._source_sets: list[tuple[np.ndarray, np.ndarray]] = []

    def prepare(self, sources: list[TaskData], rng: np.random.Generator) -> None:
        super().prepare(sources, rng)
        trimmed = sources
        if self.max_source_samples is not None:
            trimmed = [s.subsample(self.max_source_samples, rng) for s in sources]
        self._source_sets = [(s.X, s.y) for s in trimmed]

    def model(self, target: TaskData, rng: np.random.Generator) -> PredictFn | None:
        # Unlike PS, a zero-sample target is fine: the LCM supports
        # unequal (including empty) per-task datasets (Sec. V-A2).
        return self._fit_lcm(self._source_sets, target, rng)
